package dro

import (
	"errors"
	"math"
	"testing"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

func trainedSoftmax(t *testing.T) (*nn.SoftmaxRegression, tensor.Vec, []data.Sample) {
	t.Helper()
	r := rng.New(1)
	m := &nn.SoftmaxRegression{In: 4, Classes: 3}
	batch := make([]data.Sample, 60)
	for i := range batch {
		x := tensor.NewVec(4)
		for j := range x {
			x[j] = r.Norm()
		}
		y := 0
		switch {
		case x[0] > 0.3:
			y = 1
		case x[1] > 0.3:
			y = 2
		}
		batch[i] = data.Sample{X: x, Y: y}
	}
	p := m.InitParams(r)
	for step := 0; step < 200; step++ {
		p.Axpy(-0.5, m.Grad(p, batch))
	}
	return m, p, batch
}

func TestSquaredL2Cost(t *testing.T) {
	c := SquaredL2{}
	x := tensor.Vec{1, 2}
	x0 := tensor.Vec{0, 0}
	if got := c.Value(x, x0); math.Abs(got-5) > 1e-12 {
		t.Errorf("Value = %v, want 5", got)
	}
	g := c.Grad(x, x0)
	if g[0] != 2 || g[1] != 4 {
		t.Errorf("Grad = %v, want [2 4]", g)
	}
	if c.Value(x, x) != 0 {
		t.Error("c(x,x) must be 0")
	}
}

func TestSquaredL2GradMatchesNumerical(t *testing.T) {
	c := SquaredL2{}
	x := tensor.Vec{0.5, -1.5, 2}
	x0 := tensor.Vec{0.1, 0.2, 0.3}
	g := c.Grad(x, x0)
	const eps = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		vp := c.Value(x, x0)
		x[i] = orig - eps
		vm := c.Value(x, x0)
		x[i] = orig
		num := (vp - vm) / (2 * eps)
		if math.Abs(num-g[i]) > 1e-5 {
			t.Errorf("grad[%d] = %v, numerical %v", i, g[i], num)
		}
	}
}

func TestPerturbIncreasesLoss(t *testing.T) {
	m, p, batch := trainedSoftmax(t)
	cfg := PerturbConfig{Lambda: 0.1, Nu: 0.5, Steps: 10, Cost: SquaredL2{}}
	s := batch[0]
	before := m.Loss(p, []data.Sample{s})
	adv, err := Perturb(m, p, s, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := m.Loss(p, []data.Sample{adv})
	if after <= before {
		t.Errorf("perturbation did not increase loss: %v -> %v", before, after)
	}
	if adv.Y != s.Y {
		t.Error("perturbation changed the label")
	}
	if s.X.Dist(adv.X) == 0 {
		t.Error("perturbation did not move x")
	}
}

func TestPerturbLargerLambdaStaysCloser(t *testing.T) {
	m, p, batch := trainedSoftmax(t)
	s := batch[0]
	dist := func(lambda float64) float64 {
		cfg := PerturbConfig{Lambda: lambda, Nu: 0.3, Steps: 15, Cost: SquaredL2{}}
		adv, err := Perturb(m, p, s, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s.X.Dist(adv.X)
	}
	small := dist(0.1)
	large := dist(10)
	if large >= small {
		t.Errorf("λ=10 moved farther (%v) than λ=0.1 (%v); penalty has no effect", large, small)
	}
}

func TestPerturbRespectsClamp(t *testing.T) {
	m, p, batch := trainedSoftmax(t)
	cfg := PerturbConfig{Lambda: 0, Nu: 5, Steps: 20, Cost: SquaredL2{}, ClampMin: -0.5, ClampMax: 0.5}
	adv, err := Perturb(m, p, batch[0], nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range adv.X {
		if v < -0.5 || v > 0.5 {
			t.Fatalf("perturbed feature %v escaped clamp range", v)
		}
	}
}

func TestPerturbValidation(t *testing.T) {
	m, p, batch := trainedSoftmax(t)
	bad := []PerturbConfig{
		{Lambda: -1, Nu: 1, Steps: 1, Cost: SquaredL2{}},
		{Lambda: 1, Nu: 0, Steps: 1, Cost: SquaredL2{}},
		{Lambda: 1, Nu: 1, Steps: 0, Cost: SquaredL2{}},
		{Lambda: 1, Nu: 1, Steps: 1, Cost: nil},
		{Lambda: 1, Nu: 1, Steps: 1, Cost: SquaredL2{}, ClampMin: 1, ClampMax: 0},
	}
	for i, cfg := range bad {
		if _, err := Perturb(m, p, batch[0], nil, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// modelWithoutInputGrad hides the InputGradienter implementation.
type modelWithoutInputGrad struct{ nn.Model }

func TestPerturbRequiresInputGrad(t *testing.T) {
	m, p, batch := trainedSoftmax(t)
	wrapped := modelWithoutInputGrad{m}
	cfg := PerturbConfig{Lambda: 1, Nu: 1, Steps: 1, Cost: SquaredL2{}}
	if _, err := Perturb(wrapped, p, batch[0], nil, cfg); !errors.Is(err, ErrNoInputGrad) {
		t.Errorf("err = %v, want ErrNoInputGrad", err)
	}
	if _, err := FGSM(wrapped, p, batch[0], nil, 0.1, 0, 0); !errors.Is(err, ErrNoInputGrad) {
		t.Errorf("FGSM err = %v, want ErrNoInputGrad", err)
	}
}

func TestSurrogateLossAtLeastCleanLossMinusPenalty(t *testing.T) {
	m, p, batch := trainedSoftmax(t)
	cfg := PerturbConfig{Lambda: 0.5, Nu: 0.3, Steps: 10, Cost: SquaredL2{}}
	s := batch[1]
	clean := m.Loss(p, []data.Sample{s})
	sur, err := SurrogateLoss(m, p, s, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The supremum includes x = x0, so the surrogate is >= clean loss; the
	// ascent approximation can only fall below by numerical slack.
	if sur < clean-1e-9 {
		t.Errorf("surrogate %v below clean loss %v", sur, clean)
	}
}

func TestFGSMIncreasesLossAndScalesWithXi(t *testing.T) {
	m, p, batch := trainedSoftmax(t)
	s := batch[2]
	clean := m.Loss(p, []data.Sample{s})
	lossAt := func(xi float64) float64 {
		adv, err := FGSM(m, p, s, nil, xi, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return m.Loss(p, []data.Sample{adv})
	}
	small := lossAt(0.05)
	big := lossAt(0.5)
	if small <= clean {
		t.Errorf("FGSM ξ=0.05 did not increase loss: %v vs %v", small, clean)
	}
	if big <= small {
		t.Errorf("larger ξ did not hurt more: %v vs %v", big, small)
	}
	// ξ = 0 must be a no-op.
	adv, err := FGSM(m, p, s, nil, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.X.Dist(adv.X) != 0 {
		t.Error("FGSM with ξ=0 moved x")
	}
}

func TestFGSMNegativeXiRejected(t *testing.T) {
	m, p, batch := trainedSoftmax(t)
	if _, err := FGSM(m, p, batch[0], nil, -0.1, 0, 0); err == nil {
		t.Error("negative ξ accepted")
	}
}

func TestFGSMBatch(t *testing.T) {
	m, p, batch := trainedSoftmax(t)
	advs, err := FGSMBatch(m, p, batch[:10], 0.2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(advs) != 10 {
		t.Fatalf("got %d adversarial samples", len(advs))
	}
	cleanAcc := nn.Accuracy(m, p, batch[:10])
	advAcc := nn.Accuracy(m, p, advs)
	if advAcc > cleanAcc {
		t.Errorf("adversarial accuracy %v exceeds clean %v", advAcc, cleanAcc)
	}
}

func TestFGSMClamp(t *testing.T) {
	m, p, batch := trainedSoftmax(t)
	adv, err := FGSM(m, p, batch[0], nil, 10, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range adv.X {
		if v < -1 || v > 1 {
			t.Fatalf("FGSM escaped clamp: %v", v)
		}
	}
}

func TestPGDL2StaysInBall(t *testing.T) {
	m, p, batch := trainedSoftmax(t)
	s := batch[0]
	const eps = 0.7
	adv, err := PGDL2(m, p, s, nil, eps, 0.3, 20, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := s.X.Dist(adv.X); d > eps+1e-9 {
		t.Errorf("PGD escaped the ball: distance %v > %v", d, eps)
	}
	if adv.Y != s.Y {
		t.Error("PGD changed the label")
	}
}

func TestPGDL2IncreasesLossAndScalesWithEps(t *testing.T) {
	m, p, batch := trainedSoftmax(t)
	s := batch[1]
	clean := m.Loss(p, []data.Sample{s})
	lossAt := func(eps float64) float64 {
		adv, err := PGDL2(m, p, s, nil, eps, eps/4, 15, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return m.Loss(p, []data.Sample{adv})
	}
	small := lossAt(0.2)
	big := lossAt(2)
	if small <= clean {
		t.Errorf("PGD eps=0.2 did not increase loss: %v vs %v", small, clean)
	}
	if big <= small {
		t.Errorf("larger radius did not hurt more: %v vs %v", big, small)
	}
}

func TestPGDL2Validation(t *testing.T) {
	m, p, batch := trainedSoftmax(t)
	s := batch[0]
	if _, err := PGDL2(m, p, s, nil, -1, 0.1, 5, 0, 0); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := PGDL2(m, p, s, nil, 1, 0, 5, 0, 0); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := PGDL2(m, p, s, nil, 1, 0.1, 0, 0, 0); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := PGDL2(m, p, s, nil, 1, 0.1, 5, 1, 0); err == nil {
		t.Error("inverted clamp accepted")
	}
	if _, err := PGDL2(modelWithoutInputGrad{m}, p, s, nil, 1, 0.1, 5, 0, 0); !errors.Is(err, ErrNoInputGrad) {
		t.Error("missing input gradient not detected")
	}
}

func TestPGDL2Batch(t *testing.T) {
	m, p, batch := trainedSoftmax(t)
	advs, err := PGDL2Batch(m, p, batch[:8], 0.5, 0.2, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(advs) != 8 {
		t.Fatalf("got %d samples", len(advs))
	}
	if nn.Accuracy(m, p, advs) > nn.Accuracy(m, p, batch[:8]) {
		t.Error("PGD batch raised accuracy")
	}
}

func TestPGDL2RespectsClamp(t *testing.T) {
	m, p, batch := trainedSoftmax(t)
	adv, err := PGDL2(m, p, batch[0], nil, 100, 10, 10, -0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range adv.X {
		if v < -0.5 || v > 0.5 {
			t.Fatalf("PGD escaped clamp: %v", v)
		}
	}
}

func TestRobustAdaptValidation(t *testing.T) {
	m, p, batch := trainedSoftmax(t)
	cfg := PerturbConfig{Lambda: 0.1, Nu: 0.3, Steps: 3, Cost: SquaredL2{}}
	if _, err := RobustAdapt(m, p, batch[:5], 0, 2, cfg); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := RobustAdapt(m, p, batch[:5], 0.1, -1, cfg); err == nil {
		t.Error("negative steps accepted")
	}
	if _, err := RobustAdapt(m, p, batch[:5], 0.1, 1, PerturbConfig{}); err == nil {
		t.Error("invalid perturb config accepted")
	}
}

func TestRobustAdaptZeroStepsIsIdentity(t *testing.T) {
	m, p, batch := trainedSoftmax(t)
	cfg := PerturbConfig{Lambda: 0.1, Nu: 0.3, Steps: 3, Cost: SquaredL2{}}
	phi, err := RobustAdapt(m, p, batch[:5], 0.1, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if phi.Dist(p) != 0 {
		t.Error("zero steps changed θ")
	}
	// And θ itself must be untouched by the call.
	phi[0] += 99
	if p[0] == phi[0] {
		t.Error("RobustAdapt aliases θ")
	}
}

func TestRobustAdaptHardensAgainstAttack(t *testing.T) {
	// Robust adaptation should yield better accuracy under attack than
	// plain adaptation at the same step budget.
	m, p, batch := trainedSoftmax(t)
	adaptSet := batch[:12]
	evalSet := batch[12:40]
	const alpha, steps = 0.3, 8

	plain := p.Clone()
	for s := 0; s < steps; s++ {
		plain.Axpy(-alpha, m.Grad(plain, adaptSet))
	}
	cfg := PerturbConfig{Lambda: 0.05, Nu: 0.5, Steps: 5, Cost: SquaredL2{}}
	robust, err := RobustAdapt(m, p, adaptSet, alpha, steps, cfg)
	if err != nil {
		t.Fatal(err)
	}

	advPlain, err := PGDL2Batch(m, plain, evalSet, 1.0, 0.3, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	advRobust, err := PGDL2Batch(m, robust, evalSet, 1.0, 0.3, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	accPlain := nn.Accuracy(m, plain, advPlain)
	accRobust := nn.Accuracy(m, robust, advRobust)
	if accRobust < accPlain-1e-9 {
		t.Errorf("robust adaptation (%v) under attack worse than plain (%v)", accRobust, accPlain)
	}
}
