// Package dro implements the distributionally-robust-optimization substrate
// of Section V: the Wasserstein transportation cost, the Lagrangian-relaxed
// robust surrogate loss l_λ(θ, (x₀,y₀)) = sup_x { l(θ,(x,y₀)) − λ·c((x,y₀),(x₀,y₀)) }
// approximated by gradient ascent (the adversarial data generation of
// Algorithm 2), and the FGSM attack used to evaluate robustness in §VI-C.
package dro

import (
	"errors"
	"fmt"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/tensor"
)

// Cost is a transportation cost restricted to feature perturbations: the
// paper's §VI-C cost assigns infinite cost to label changes, so only x moves.
type Cost interface {
	// Value returns c((x, y), (x0, y)).
	Value(x, x0 tensor.Vec) float64
	// Grad returns ∇_x c((x, y), (x0, y)).
	Grad(x, x0 tensor.Vec) tensor.Vec
}

// CostGradInto is an optional Cost extension for allocation-free ascent
// loops: GradInto writes ∇_x c((x, y), (x0, y)) into out, which must have
// the feature dimension and may not alias x or x0.
type CostGradInto interface {
	Cost
	GradInto(x, x0, out tensor.Vec)
}

// costGradInto dispatches to the buffered gradient when the cost supports
// it, falling back to copying the allocating Grad.
func costGradInto(c Cost, x, x0, out tensor.Vec) {
	if ci, ok := c.(CostGradInto); ok {
		ci.GradInto(x, x0, out)
		return
	}
	out.CopyFrom(c.Grad(x, x0))
}

// SquaredL2 is the paper's transportation cost c = ‖x − x′‖₂². It is
// 2-strongly convex in x (Assumption 5 asks for 1-strong convexity, which
// ‖·‖² dominates).
type SquaredL2 struct{}

var (
	_ Cost         = SquaredL2{}
	_ CostGradInto = SquaredL2{}
)

// Value implements Cost.
func (SquaredL2) Value(x, x0 tensor.Vec) float64 {
	d := x.Dist(x0)
	return d * d
}

// Grad implements Cost.
func (SquaredL2) Grad(x, x0 tensor.Vec) tensor.Vec {
	g := x.Sub(x0)
	g.ScaleInPlace(2)
	return g
}

// GradInto implements CostGradInto: out = 2(x − x0).
func (SquaredL2) GradInto(x, x0, out tensor.Vec) {
	x.SubInto(x0, out)
	out.ScaleInPlace(2)
}

// ErrNoInputGrad is returned when the model cannot differentiate its loss
// with respect to the input features.
var ErrNoInputGrad = errors.New("dro: model does not implement nn.InputGradienter")

// PerturbConfig parameterizes the inner-maximization ascent of Algorithm 2
// (lines 17–20).
type PerturbConfig struct {
	// Lambda is the DRO penalty λ; smaller λ = larger uncertainty set =
	// more aggressive perturbations.
	Lambda float64
	// Nu is the ascent learning rate ν.
	Nu float64
	// Steps is Ta, the number of ascent steps.
	Steps int
	// Cost is the transportation cost (SquaredL2 in the paper).
	Cost Cost
	// ClampMin/ClampMax bound the perturbed features to the valid input
	// domain (e.g. [0,1] for image pixels). No clamping when equal.
	ClampMin, ClampMax float64
}

func (c PerturbConfig) validate() error {
	switch {
	case c.Lambda < 0:
		return fmt.Errorf("dro: negative lambda %v", c.Lambda)
	case c.Nu <= 0:
		return fmt.Errorf("dro: ascent rate nu must be positive, got %v", c.Nu)
	case c.Steps <= 0:
		return fmt.Errorf("dro: ascent steps must be positive, got %d", c.Steps)
	case c.Cost == nil:
		return errors.New("dro: nil transportation cost")
	case c.ClampMax < c.ClampMin:
		return fmt.Errorf("dro: clamp range [%v, %v] inverted", c.ClampMin, c.ClampMax)
	}
	return nil
}

// Perturb approximately solves x* = argmax_x { l(θ,(x,y)) − λ·c((x,y),(x₀,y)) }
// by cfg.Steps gradient-ascent steps from x₀ = s.X, returning the perturbed
// sample (the label is kept, matching the infinite label-transport cost).
// ctx supplies reference batch statistics for batch-normalized models.
func Perturb(m nn.Model, params tensor.Vec, s data.Sample, ctx []data.Sample, cfg PerturbConfig) (data.Sample, error) {
	if err := cfg.validate(); err != nil {
		return data.Sample{}, err
	}
	ig, ok := m.(nn.InputGradienter)
	if !ok {
		return data.Sample{}, fmt.Errorf("%w (%T)", ErrNoInputGrad, m)
	}
	x0 := s.X
	cur := data.Sample{X: x0.Clone(), Y: s.Y}
	// The penalty term makes the ascent objective λ·μ_c-strongly concave
	// (μ_c = 2 for SquaredL2); plain gradient ascent diverges when
	// ν·2λ > 1, so cap the effective step at the stability limit.
	nu := cfg.Nu
	if cfg.Lambda > 0 {
		if limit := 0.45 / cfg.Lambda; nu > limit {
			nu = limit
		}
	}
	// One workspace and two feature-sized buffers serve all ascent steps.
	ws := nn.NewWorkspace(m)
	g := tensor.NewVec(len(x0))
	var costG tensor.Vec
	if cfg.Lambda != 0 {
		costG = tensor.NewVec(len(x0))
	}
	for step := 0; step < cfg.Steps; step++ {
		nn.InputGradInto(ig, ws, params, cur, ctx, g)
		if cfg.Lambda != 0 {
			costGradInto(cfg.Cost, cur.X, x0, costG)
			g.Axpy(-cfg.Lambda, costG)
		}
		cur.X.Axpy(nu, g)
		if cfg.ClampMax > cfg.ClampMin {
			cur.X.ClampInPlace(cfg.ClampMin, cfg.ClampMax)
		}
	}
	return cur, nil
}

// SurrogateLoss estimates the robust surrogate l_λ(θ, s) by running Perturb
// and evaluating l(θ, (x*, y)) − λ·c(x*, x₀). It lower-bounds the true
// supremum (the ascent is approximate).
func SurrogateLoss(m nn.Model, params tensor.Vec, s data.Sample, ctx []data.Sample, cfg PerturbConfig) (float64, error) {
	adv, err := Perturb(m, params, s, ctx, cfg)
	if err != nil {
		return 0, err
	}
	return m.Loss(params, []data.Sample{adv}) - cfg.Lambda*cfg.Cost.Value(adv.X, s.X), nil
}

// RobustAdapt performs the target-side counterpart of Eq. 8: `steps`
// gradient-descent updates from theta where each step's loss combines the
// clean adaptation set with freshly generated adversarial copies (the
// Lagrangian-relaxed inner maximization under the current parameters). The
// result is a locally adapted model that is hardened against perturbations
// of its own few-shot data. theta is not modified.
func RobustAdapt(m nn.Model, theta tensor.Vec, adaptSet []data.Sample, alpha float64, steps int, cfg PerturbConfig) (tensor.Vec, error) {
	if alpha <= 0 {
		return nil, fmt.Errorf("dro: adaptation rate must be positive, got %v", alpha)
	}
	if steps < 0 {
		return nil, fmt.Errorf("dro: negative adaptation steps %d", steps)
	}
	phi := theta.Clone()
	for s := 0; s < steps; s++ {
		combined := make([]data.Sample, 0, 2*len(adaptSet))
		combined = append(combined, adaptSet...)
		for i, sample := range adaptSet {
			adv, err := Perturb(m, phi, sample, adaptSet, cfg)
			if err != nil {
				return nil, fmt.Errorf("dro: robust adapt step %d sample %d: %w", s, i, err)
			}
			combined = append(combined, adv)
		}
		phi.Axpy(-alpha, m.Grad(phi, combined))
	}
	return phi, nil
}

// FGSM applies the Fast Gradient Sign Method attack of Goodfellow et al.
// with perturbation budget xi: x′ = x + ξ·sign(∇_x l(θ,(x,y))), optionally
// clamped to [clampMin, clampMax] (no clamping when equal). This is the
// attack the paper uses to evaluate (robust) FedML at the target node.
func FGSM(m nn.Model, params tensor.Vec, s data.Sample, ctx []data.Sample, xi, clampMin, clampMax float64) (data.Sample, error) {
	ig, ok := m.(nn.InputGradienter)
	if !ok {
		return data.Sample{}, fmt.Errorf("%w (%T)", ErrNoInputGrad, m)
	}
	if xi < 0 {
		return data.Sample{}, fmt.Errorf("dro: negative FGSM budget %v", xi)
	}
	g := ig.InputGrad(params, s, ctx)
	x := s.X.Clone()
	for i := range x {
		x[i] += xi * tensor.Sign(g[i])
	}
	if clampMax > clampMin {
		x.ClampInPlace(clampMin, clampMax)
	}
	return data.Sample{X: x, Y: s.Y}, nil
}

// PGDL2 runs a projected-gradient-descent attack inside an ℓ2 ball of
// radius eps around s.X: `steps` ascent steps of size stepSize on the loss,
// each followed by projection back onto the ball (and the optional clamp
// box). This is the attack whose threat model matches the Wasserstein-DRO
// training objective (c = ‖x−x′‖²), complementing the ℓ∞ FGSM evaluation.
func PGDL2(m nn.Model, params tensor.Vec, s data.Sample, ctx []data.Sample, eps, stepSize float64, steps int, clampMin, clampMax float64) (data.Sample, error) {
	ig, ok := m.(nn.InputGradienter)
	if !ok {
		return data.Sample{}, fmt.Errorf("%w (%T)", ErrNoInputGrad, m)
	}
	switch {
	case eps < 0:
		return data.Sample{}, fmt.Errorf("dro: negative PGD radius %v", eps)
	case stepSize <= 0:
		return data.Sample{}, fmt.Errorf("dro: PGD step size must be positive, got %v", stepSize)
	case steps <= 0:
		return data.Sample{}, fmt.Errorf("dro: PGD steps must be positive, got %d", steps)
	case clampMax < clampMin:
		return data.Sample{}, fmt.Errorf("dro: clamp range [%v, %v] inverted", clampMin, clampMax)
	}
	x0 := s.X
	cur := data.Sample{X: x0.Clone(), Y: s.Y}
	for step := 0; step < steps; step++ {
		g := ig.InputGrad(params, cur, ctx)
		// Normalized ascent direction keeps the step scale-free.
		if n := g.Norm(); n > 0 {
			g.ScaleInPlace(1 / n)
		}
		cur.X.Axpy(stepSize, g)
		// Project back onto the ℓ2 ball around x0.
		delta := cur.X.Sub(x0)
		if n := delta.Norm(); n > eps {
			delta.ScaleInPlace(eps / n)
			cur.X = x0.Add(delta)
		}
		if clampMax > clampMin {
			cur.X.ClampInPlace(clampMin, clampMax)
		}
	}
	return cur, nil
}

// PGDL2Batch attacks every sample of batch inside the same ℓ2 budget.
func PGDL2Batch(m nn.Model, params tensor.Vec, batch []data.Sample, eps, stepSize float64, steps int, clampMin, clampMax float64) ([]data.Sample, error) {
	out := make([]data.Sample, len(batch))
	for i, s := range batch {
		adv, err := PGDL2(m, params, s, batch, eps, stepSize, steps, clampMin, clampMax)
		if err != nil {
			return nil, fmt.Errorf("attack sample %d: %w", i, err)
		}
		out[i] = adv
	}
	return out, nil
}

// FGSMBatch attacks every sample of batch (each with the same budget),
// returning the adversarial test set used by the Figure 4 evaluation.
func FGSMBatch(m nn.Model, params tensor.Vec, batch []data.Sample, xi, clampMin, clampMax float64) ([]data.Sample, error) {
	out := make([]data.Sample, len(batch))
	for i, s := range batch {
		adv, err := FGSM(m, params, s, batch, xi, clampMin, clampMax)
		if err != nil {
			return nil, fmt.Errorf("attack sample %d: %w", i, err)
		}
		out[i] = adv
	}
	return out, nil
}
