// Sentiment scenario: dozens of social-media accounts (edge nodes) hold a
// few dozen labelled posts each, written in account-specific styles over a
// shared sentiment lexicon. The federation meta-trains the paper's
// Sent140 model (frozen character embeddings feeding a batch-normalized
// ReLU MLP) and a brand-new account personalizes it from K = 5 posts.
package main

import (
	"fmt"
	"os"

	"github.com/edgeai/fedml/internal/core"
	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sentiment:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := data.DefaultSent140Config()
	cfg.Nodes = 40
	cfg.EmbedDim = 16 // GloVe stand-in width (paper: 300)
	cfg.SeqLen = 15
	cfg.Seed = 21
	// Focus the walkthrough on style personalization: every account shares
	// the sentiment lexicons (no polarity flips).
	cfg.FlipFraction = 0
	fed, err := data.GenerateSent140(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%d accounts (%d meta-training, %d held out), %d-dim embedded posts\n",
		len(fed.Sources)+len(fed.Targets), len(fed.Sources), len(fed.Targets), fed.Dim)

	model, err := nn.NewMLP(nn.MLPConfig{
		Dims:      []int{fed.Dim, 64, 32, 16, fed.NumClasses},
		BatchNorm: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("model: 3-hidden-layer BN+ReLU MLP, %d parameters\n", model.NumParams())

	trainCfg := core.Config{
		Alpha: 0.05, Beta: 0.3, T: 100, T0: 5, Seed: 21,
		OnRound: func(round, _ int, theta tensor.Vec) {
			if round%5 == 0 {
				fmt.Printf("  round %3d: G(θ) = %.4f\n",
					round, eval.GlobalMetaObjective(model, fed, 0.05, theta))
			}
		},
	}
	res, err := core.Train(model, fed, nil, trainCfg)
	if err != nil {
		return err
	}

	fmt.Println("personalizing for each held-out account (5 posts each):")
	for i, target := range fed.Targets {
		curve := eval.AdaptationCurve(model, res.Theta, target, trainCfg.Alpha, 5)
		fmt.Printf("  account %d: accuracy %.3f -> %.3f after 5 adaptation steps\n",
			i, curve[0].Accuracy, curve[5].Accuracy)
	}
	avg := eval.AverageAdaptationCurve(model, res.Theta, fed.Targets, trainCfg.Alpha, 5)
	fmt.Printf("average: %.3f -> %.3f\n", avg[0].Accuracy, avg[5].Accuracy)
	return nil
}
