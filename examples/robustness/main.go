// Robustness scenario: edge cameras classify digits but an adversary can
// perturb the pixels they see. The example trains plain FedML and the
// paper's Robust FedML (Algorithm 2: distributionally robust optimization
// over a Wasserstein ball, realized by gradient-ascent adversarial data
// generation during meta-training) and compares how the adapted models
// survive FGSM attacks of growing strength at a target camera.
//
// A second act targets systems-level robustness: the same federation is
// trained over a chaos-injected network (two cameras crash mid-training and
// later return; another emits a corrupted update) and the run is compared
// against the fault-free baseline.
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/edgeai/fedml/internal/core"
	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "robustness:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := data.DefaultMNISTConfig()
	cfg.Nodes = 20
	cfg.MeanSamples = 24
	cfg.Seed = 5
	fed, err := data.GenerateMNIST(cfg)
	if err != nil {
		return err
	}
	model := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses, L2: 0.01}
	fmt.Printf("MNIST-like federation: %d cameras, 2 digits each\n", len(fed.Sources)+len(fed.Targets))

	base := core.Config{Alpha: 0.01, Beta: 0.01, T: 300, T0: 5, Seed: 5}

	fmt.Println("training plain FedML...")
	plain, err := core.Train(model, fed, nil, base)
	if err != nil {
		return err
	}

	fmt.Println("training Robust FedML (λ=0.01, Ta=10 ascent steps, R=2 generations)...")
	robustCfg := base
	robustCfg.Robust = &core.RobustConfig{
		Lambda: 0.01, Nu: 1, Ta: 10, N0: 24, R: 2,
		ClampMin: 0, ClampMax: 1, // pixel domain
	}
	robust, err := core.Train(model, fed, nil, robustCfg)
	if err != nil {
		return err
	}

	fmt.Println("\nadapted accuracy at target cameras under FGSM attacks:")
	fmt.Printf("%-8s %-12s %-12s %-12s\n", "ξ", "FedML", "RobustFedML", "advantage")
	for _, xi := range []float64{0, 0.005, 0.01, 0.02, 0.05} {
		pc, err := eval.AverageAdversarialAdaptationCurve(model, plain.Theta, fed.Targets, base.Alpha, 5, xi, 0, 1)
		if err != nil {
			return err
		}
		rc, err := eval.AverageAdversarialAdaptationCurve(model, robust.Theta, fed.Targets, base.Alpha, 5, xi, 0, 1)
		if err != nil {
			return err
		}
		p, r := pc[5].Accuracy, rc[5].Accuracy
		fmt.Printf("%-8g %-12.3f %-12.3f %+.3f\n", xi, p, r, r-p)
	}
	fmt.Println("(ξ=0 is clean data; the robust model trades a little clean accuracy for attack resistance)")

	return chaosDemo(model, fed, base, plain)
}

// chaosDemo reruns the plain training over a fault-injected network: cameras
// 1 and 4 crash at rounds 3 and 5 and return a few rounds later, camera 7
// sends one corrupted update. Drop/rejoin and the sanitation guard keep the
// run alive, and the final meta-objective lands near the fault-free one.
func chaosDemo(model nn.Model, fed *data.Federation, base core.Config, plain *core.Result) error {
	fmt.Println("\nchaos-injected rerun: 2 cameras crash and return, 1 corrupted update")
	scenario, err := transport.ParseScenario("1:kill@3,1:revive@6,4:kill@5,4:revive@8,7:corrupt@4")
	if err != nil {
		return err
	}
	cfg := base
	cfg.RoundTimeout = 400 * time.Millisecond
	cfg.GuardRadius = 50
	cfg.WrapLink = func(i int, l transport.Link) transport.Link {
		return transport.NewChaos(l, transport.ChaosConfig{Seed: 900 + uint64(i), Scenario: scenario[i]})
	}
	chaos, err := core.Train(model, fed, nil, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("  dropped %d, rejoined %d, rejected %d, skipped rounds %d\n",
		chaos.Comm.Dropped, chaos.Comm.Rejoined, chaos.Comm.Rejected, chaos.Comm.SkippedRounds)
	gFF := eval.GlobalMetaObjective(model, fed, base.Alpha, plain.Theta)
	gCh := eval.GlobalMetaObjective(model, fed, base.Alpha, chaos.Theta)
	fmt.Printf("  G(θ) fault-free %.4f vs chaos %.4f (Δ %+.2f%%)\n", gFF, gCh, 100*(gCh-gFF)/gFF)
	fmt.Println("(crashed cameras are re-probed each round and rejoin; bad updates are rejected at the guard)")
	return nil
}
