// Operations scenario: running a federation like a production service. The
// platform and nodes talk over real TCP on loopback; one node dies
// mid-training; the platform's fault-tolerant rounds (deadline-bounded
// async I/O) drop it and keep going; an adaptive-T0 controller retunes the
// communication/computation balance from the measured update dispersion;
// and the final meta-model is written to a checkpoint a target device could
// load with `fedml adapt`.
package main

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"github.com/edgeai/fedml/internal/checkpoint"
	"github.com/edgeai/fedml/internal/core"
	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "operations:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := data.DefaultSyntheticConfig(0.5, 0.5)
	cfg.Nodes = 12
	cfg.Seed = 31
	fed, err := data.GenerateSynthetic(cfg)
	if err != nil {
		return err
	}
	m := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses, L2: 0.01}

	trainCfg := core.Config{
		Alpha: 0.05, Beta: 0.01, T: 150, T0: 5, Seed: 31,
		// Fault tolerance: a node that misses the deadline is dropped.
		RoundTimeout: 2 * time.Second,
		MinNodes:     3,
		// Adaptive T0: retune local steps from the measured dispersion.
		T0Controller: core.DispersionController(1, 25, 0.35),
		Logf: func(format string, args ...any) {
			fmt.Printf("  [platform] "+format+"\n", args...)
		},
		OnRound: func(round, iter int, theta tensor.Vec) {
			if round%5 == 0 {
				fmt.Printf("  round %3d (iter %3d)\n", round, iter)
			}
		},
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("platform listening on %s\n", ln.Addr())

	// Launch the edge nodes as TCP clients. Node 3 is flaky: it serves two
	// rounds and then silently dies (e.g. battery ran out).
	nodeDone := make(chan struct{}, len(fed.Sources))
	for i, nd := range fed.Sources {
		go func(i int, nd *data.NodeDataset) {
			defer func() { nodeDone <- struct{}{} }()
			link, err := transport.Dial(ln.Addr().String())
			if err != nil {
				return
			}
			defer link.Close()
			if i == 3 {
				runFlakyNode(link, i)
				return
			}
			_ = core.RunNode(link, core.NodeConfig{ID: i, Model: m, Data: nd, Shared: trainCfg})
		}(i, nd)
	}

	links, err := transport.Accept(ln, len(fed.Sources))
	if err != nil {
		return err
	}
	// Fault-tolerant mode hands link ownership to the platform.
	weights := make([]float64, len(links))
	for i := range weights {
		weights[i] = 1
	}
	theta0 := m.InitParams(rng.New(trainCfg.Seed))
	theta, stats, err := core.RunPlatform(links, weights, theta0, trainCfg)
	if err != nil {
		return err
	}
	fmt.Printf("training survived: %d rounds, %d node(s) dropped, %.0f KiB exchanged\n",
		stats.Rounds, stats.Dropped, float64(stats.Bytes)/1024)

	curve := eval.AverageAdaptationCurve(m, theta, fed.Targets, trainCfg.Alpha, 3)
	fmt.Printf("target adaptation: %.3f -> %.3f accuracy after 3 steps\n",
		curve[0].Accuracy, curve[3].Accuracy)

	// Persist the meta-model for target devices.
	path := filepath.Join(os.TempDir(), "fedml-operations-checkpoint.json")
	ck, err := checkpoint.FromModel(m, theta, trainCfg.Alpha, "operations demo")
	if err != nil {
		return err
	}
	if err := checkpoint.SaveFile(path, ck); err != nil {
		return err
	}
	fmt.Printf("checkpoint written to %s\n", path)

	for range fed.Sources {
		<-nodeDone
	}
	return nil
}

// runFlakyNode answers two rounds of the protocol and then goes silent,
// simulating a device failure mid-federation.
func runFlakyNode(link transport.Link, id int) {
	for round := 0; round < 2; round++ {
		msg, err := link.Recv()
		if err != nil || msg.Kind != transport.KindParams {
			return
		}
		// Answer honestly for two rounds (echoing the received parameters
		// is enough for the demo; a real node would compute meta-updates).
		_ = link.Send(transport.Msg{
			Kind:   transport.KindUpdate,
			Round:  msg.Round,
			NodeID: id,
			Params: msg.Params,
		})
	}
	fmt.Printf("  [node %d] going dark\n", id)
	// Keep the connection open but never answer again: the platform's
	// round deadline must handle this.
	time.Sleep(8 * time.Second)
}
