// Edge-IoT scenario: a fleet of sensor gateways (edge nodes) with
// heterogeneous local sensing tasks federates to learn a meta-initialization
// under a COMMUNICATION BUDGET. The example sweeps the local-update count T0
// — the knob Theorem 2 of the paper analyzes — and shows the trade-off the
// platform faces: fewer aggregations (large T0) cut network traffic but
// leave a larger convergence error at fixed T. It then overlays the
// Theorem 2 prediction computed by the theory package on a toy quadratic
// federation with known constants.
package main

import (
	"fmt"
	"math"
	"os"

	"github.com/edgeai/fedml/internal/core"
	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/theory"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "edgeiot:", err)
		os.Exit(1)
	}
}

func run() error {
	// Sensor gateways: 24 nodes, each classifying 60-dimensional sensor
	// feature vectors into 10 activity classes, with node-specific sensor
	// placement (the Synthetic(0.5, 0.5) heterogeneity).
	cfg := data.DefaultSyntheticConfig(0.5, 0.5)
	cfg.Nodes = 24
	cfg.Seed = 13
	fed, err := data.GenerateSynthetic(cfg)
	if err != nil {
		return err
	}
	model := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses, L2: 0.01}

	fmt.Println("communication/computation trade-off at fixed T = 200 local iterations:")
	fmt.Printf("%-6s %-10s %-12s %-14s\n", "T0", "rounds", "KiB sent", "final G(θ)")
	for _, t0 := range []int{1, 5, 10, 20} {
		var final float64
		trainCfg := core.Config{
			Alpha: 0.05, Beta: 0.01, T: 200, T0: t0, Seed: 13,
			OnRound: func(_, _ int, theta tensor.Vec) {
				final = eval.GlobalMetaObjective(model, fed, 0.05, theta)
			},
		}
		res, err := core.Train(model, fed, nil, trainCfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-6d %-10d %-12.0f %-14.4f\n",
			t0, res.Comm.Rounds, float64(res.Comm.Bytes)/1024, final)
	}

	// Theorem 2 on a quadratic sensor-calibration federation where every
	// constant is exact: each gateway's loss is ½‖θ − c_i‖² (calibrating a
	// shared parameter toward its local optimum c_i).
	fmt.Println("\nTheorem 2 bound on a quadratic federation (exact constants):")
	r := rng.New(3)
	const dim, nodes = 6, 8
	centers := make([][]float64, nodes)
	var delta float64
	cbar := make([]float64, dim)
	for i := range centers {
		c := make([]float64, dim)
		for j := range c {
			c[j] = r.Norm()
			cbar[j] += c[j] / nodes
		}
		centers[i] = c
	}
	for _, c := range centers {
		var d float64
		for j := range c {
			d += (c[j] - cbar[j]) * (c[j] - cbar[j])
		}
		delta += math.Sqrt(d) / nodes
	}
	consts := theory.Constants{Mu: 1, H: 1, B: 6, Delta: delta}
	fmt.Printf("%-6s %-12s %-12s %-12s\n", "T0", "ξ", "h(T0)", "error floor")
	for _, t0 := range []int{1, 5, 10, 20} {
		b, err := theory.ConvergenceBound(consts,
			theory.Schedule{Alpha: 0.2, Beta: 0.1, T: 200, T0: t0}, 10)
		if err != nil {
			return err
		}
		fmt.Printf("%-6d %-12.4f %-12.4g %-12.4g\n", t0, b.Xi, b.HT0, b.Floor)
	}
	fmt.Println("(larger T0 ⇒ fewer aggregations but a larger residual floor — Theorem 2)")
	return nil
}
