// Quickstart: train a model initialization across a federation of edge
// nodes with FedML (Algorithm 1 of the paper), ship it to a held-out target
// node, and adapt it there with ONE gradient step on K=5 local samples —
// the paper's "real-time edge intelligence" loop, end to end.
package main

import (
	"fmt"
	"os"

	"github.com/edgeai/fedml/internal/core"
	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/meta"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. A federation of 20 edge nodes with related-but-distinct tasks
	//    (the paper's Synthetic(0.5, 0.5) generator). 16 nodes are
	//    meta-training sources; 4 are held out as adaptation targets.
	cfg := data.DefaultSyntheticConfig(0.5, 0.5)
	cfg.Nodes = 20
	cfg.Seed = 7
	fed, err := data.GenerateSynthetic(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("federation %s: %d sources, %d targets, %d features, %d classes\n",
		fed.Name, len(fed.Sources), len(fed.Targets), fed.Dim, fed.NumClasses)

	// 2. A shared model family: multinomial logistic regression with a
	//    small ridge term (the paper's convex setting).
	model := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses, L2: 0.01}

	// 3. Federated meta-training: every node runs T0 = 5 local meta-updates
	//    (inner step on its K training samples, outer step on its test
	//    split) between global aggregations at the platform.
	trainCfg := core.Config{
		Alpha: 0.05, // inner / adaptation learning rate α
		Beta:  0.01, // meta learning rate β
		T:     200,  // total local iterations
		T0:    5,    // local iterations per communication round
		Seed:  7,
		OnRound: func(round, iter int, theta tensor.Vec) {
			if round%10 == 0 {
				fmt.Printf("  round %3d: G(θ) = %.4f\n",
					round, eval.GlobalMetaObjective(model, fed, 0.05, theta))
			}
		},
	}
	res, err := core.Train(model, fed, nil, trainCfg)
	if err != nil {
		return err
	}
	fmt.Printf("meta-training done (%d rounds, %.0f KiB exchanged)\n",
		res.Comm.Rounds, float64(res.Comm.Bytes)/1024)

	// 4. Real-time edge intelligence at a target node: one gradient step on
	//    its K = 5 local samples (Eq. 6 of the paper).
	target := fed.Targets[0]
	before := nn.Accuracy(model, res.Theta, target.Test)
	phi := meta.Adapt(model, res.Theta, target.Train, trainCfg.Alpha, 1)
	after := nn.Accuracy(model, phi, target.Test)
	fmt.Printf("target node: accuracy %.3f before adaptation, %.3f after ONE gradient step on %d samples\n",
		before, after, len(target.Train))
	return nil
}
