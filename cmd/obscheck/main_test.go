package main

import (
	"strings"
	"testing"
)

const goodLines = `{"schema":3,"round":1,"iter":5,"t0":5,"alive":3,"dur_ms":1,"msgs":6,"bytes":480,"update_norm":0.5,"dispersion":0.1,"cum":{"rounds":1,"messages":6,"bytes":480,"dropped":0,"rejoined":0,"rejected":0,"skipped_rounds":0,"stale_applied":0,"stale_dropped":0}}
{"schema":3,"round":2,"iter":10,"t0":5,"alive":3,"dur_ms":1,"msgs":6,"bytes":480,"update_norm":0.4,"dispersion":0.1,"stale_applied":1,"cum":{"rounds":2,"messages":12,"bytes":960,"dropped":0,"rejoined":0,"rejected":0,"skipped_rounds":0,"stale_applied":1,"stale_dropped":0}}
`

func TestValidateAccepts(t *testing.T) {
	n, cum, err := validate(strings.NewReader(goodLines))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || cum.Messages != 12 || cum.Bytes != 960 || cum.StaleApplied != 1 {
		t.Errorf("n=%d cum=%+v", n, cum)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]string{
		"empty input": "",
		"bad json":    "{nope}\n",
		"wrong schema": `{"schema":9,"round":1,"iter":5,"msgs":0,"bytes":0,"cum":{}}
`,
		"round not increasing": `{"schema":3,"round":2,"iter":5,"msgs":0,"bytes":0,"cum":{}}
{"schema":3,"round":2,"iter":10,"msgs":0,"bytes":0,"cum":{}}
`,
		"iter regression": `{"schema":3,"round":1,"iter":10,"msgs":0,"bytes":0,"cum":{}}
{"schema":3,"round":2,"iter":5,"msgs":0,"bytes":0,"cum":{}}
`,
		"cum regression": `{"schema":3,"round":1,"iter":5,"msgs":2,"bytes":16,"cum":{"rounds":1,"messages":2,"bytes":16}}
{"schema":3,"round":2,"iter":10,"msgs":2,"bytes":16,"cum":{"rounds":2,"messages":1,"bytes":32}}
`,
		"stale cum regression": `{"schema":3,"round":1,"iter":5,"msgs":2,"bytes":16,"cum":{"rounds":1,"messages":2,"bytes":16,"stale_applied":3}}
{"schema":3,"round":2,"iter":10,"msgs":2,"bytes":16,"cum":{"rounds":2,"messages":4,"bytes":32,"stale_applied":2}}
`,
		"delta sum mismatch": `{"schema":3,"round":1,"iter":5,"msgs":2,"bytes":16,"cum":{"rounds":1,"messages":5,"bytes":16}}
`,
	}
	for name, input := range cases {
		if _, _, err := validate(strings.NewReader(input)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
