// Command obscheck validates a per-round metrics file produced by
// fedml -metrics-out: every line must parse as a schema-versioned round
// record, rounds must be strictly increasing with non-decreasing iteration
// counts, the cumulative block must never regress, and the sum of per-round
// traffic deltas must reconstruct the final cumulative totals exactly.
// It exits non-zero on the first violation, which makes it the checker
// behind `make obs-smoke`, `make shard-smoke`, and the CI observability job.
//
// Usage: obscheck <metrics.jsonl> [more.jsonl ...]   (or - for stdin)
//
// Each file validates independently; sharded runs (fedml train -shards) emit
// one stream for the director and one per shard aggregator, and all of them
// must satisfy the same schema and reconstruction invariants.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/edgeai/fedml/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: obscheck <metrics.jsonl> [more.jsonl ...]")
	}
	for _, arg := range args {
		if err := checkFile(arg, len(args) > 1, out); err != nil {
			return err
		}
	}
	return nil
}

// checkFile validates one metrics stream ("-" reads stdin). With prefix set
// the ok line names the file, so multi-file runs stay readable.
func checkFile(path string, prefix bool, out io.Writer) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	n, cum, err := validate(in)
	if err != nil {
		if path != "-" {
			return fmt.Errorf("%s: %w", path, err)
		}
		return err
	}
	if prefix {
		fmt.Fprintf(out, "%s: ", path)
	}
	fmt.Fprintf(out, "ok: %d records, %d rounds (%d skipped), %d messages, %d bytes, %d dropped, %d rejoined, %d rejected, %d stale applied, %d stale dropped, %d budget filtered\n",
		n, cum.Rounds, cum.SkippedRounds, cum.Messages, cum.Bytes, cum.Dropped, cum.Rejoined, cum.Rejected, cum.StaleApplied, cum.StaleDropped, cum.BudgetFiltered)
	return nil
}

// validate streams the records and returns the count and final cumulative
// totals, or the first violation found.
func validate(in io.Reader) (int, obs.Totals, error) {
	var (
		prev  obs.RoundRecord
		n     int
		msgs  int
		bytes int64
	)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		n++
		var r obs.RoundRecord
		if err := json.Unmarshal(line, &r); err != nil {
			return n, prev.Cum, fmt.Errorf("record %d does not parse: %w", n, err)
		}
		if r.Schema != obs.SchemaVersion {
			return n, prev.Cum, fmt.Errorf("record %d has schema %d, want %d", n, r.Schema, obs.SchemaVersion)
		}
		if r.Round < 1 {
			return n, prev.Cum, fmt.Errorf("record %d has round %d < 1", n, r.Round)
		}
		if r.Msgs < 0 || r.Bytes < 0 {
			return n, prev.Cum, fmt.Errorf("record %d has negative traffic delta (%d msgs, %d bytes)", n, r.Msgs, r.Bytes)
		}
		if n > 1 {
			if r.Round <= prev.Round {
				return n, prev.Cum, fmt.Errorf("record %d: round %d not above previous round %d", n, r.Round, prev.Round)
			}
			if r.Iter < prev.Iter {
				return n, prev.Cum, fmt.Errorf("record %d: iter %d regressed from %d", n, r.Iter, prev.Iter)
			}
			if err := cumMonotone(prev.Cum, r.Cum); err != nil {
				return n, prev.Cum, fmt.Errorf("record %d: %w", n, err)
			}
		}
		msgs += r.Msgs
		bytes += r.Bytes
		prev = r
	}
	if err := sc.Err(); err != nil {
		return n, prev.Cum, err
	}
	if n == 0 {
		return 0, obs.Totals{}, fmt.Errorf("no records")
	}
	if msgs != prev.Cum.Messages || bytes != prev.Cum.Bytes {
		return n, prev.Cum, fmt.Errorf("delta sums (%d msgs, %d bytes) do not reconstruct final totals (%d, %d)",
			msgs, bytes, prev.Cum.Messages, prev.Cum.Bytes)
	}
	return n, prev.Cum, nil
}

func cumMonotone(a, b obs.Totals) error {
	type pair struct {
		name     string
		old, new int64
	}
	for _, p := range []pair{
		{"rounds", int64(a.Rounds), int64(b.Rounds)},
		{"messages", int64(a.Messages), int64(b.Messages)},
		{"bytes", a.Bytes, b.Bytes},
		{"dropped", int64(a.Dropped), int64(b.Dropped)},
		{"rejoined", int64(a.Rejoined), int64(b.Rejoined)},
		{"rejected", int64(a.Rejected), int64(b.Rejected)},
		{"skipped_rounds", int64(a.SkippedRounds), int64(b.SkippedRounds)},
		{"stale_applied", int64(a.StaleApplied), int64(b.StaleApplied)},
		{"stale_dropped", int64(a.StaleDropped), int64(b.StaleDropped)},
		{"budget_filtered", int64(a.BudgetFiltered), int64(b.BudgetFiltered)},
	} {
		if p.new < p.old {
			return fmt.Errorf("cumulative %s regressed from %d to %d", p.name, p.old, p.new)
		}
	}
	return nil
}
