package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/edgeai/fedml/internal/obs"
)

func TestRunRequiresMode(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no-args run succeeded")
	}
	if err := run([]string{"bogus"}); err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Errorf("bogus mode: %v", err)
	}
}

func TestTrainAndAdaptEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "model.json")

	// Silence the CLI's stdout chatter during tests.
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() {
		os.Stdout = old
		devNull.Close()
	}()

	err = run([]string{"train", "-dataset", "synthetic", "-nodes", "8", "-t", "20", "-t0", "5", "-save", ckPath})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	if _, err := os.Stat(ckPath); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	err = run([]string{"adapt", "-dataset", "synthetic", "-nodes", "8", "-checkpoint", ckPath, "-target", "0", "-steps", "2"})
	if err != nil {
		t.Fatalf("adapt: %v", err)
	}
}

func TestTrainRejectsBadDataset(t *testing.T) {
	if err := run([]string{"train", "-dataset", "imagenet", "-t", "10", "-t0", "5"}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestAdaptRequiresCheckpoint(t *testing.T) {
	if err := run([]string{"adapt"}); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Errorf("missing -checkpoint: %v", err)
	}
	if err := run([]string{"adapt", "-checkpoint", "/nonexistent/model.json"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestAdaptRejectsOutOfRangeTarget(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "model.json")
	old := os.Stdout
	devNull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devNull
	err := run([]string{"train", "-dataset", "synthetic", "-nodes", "8", "-t", "10", "-t0", "5", "-save", ckPath})
	os.Stdout = old
	devNull.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"adapt", "-checkpoint", ckPath, "-nodes", "8", "-target", "99"}); err == nil {
		t.Error("out-of-range target accepted")
	}
}

func TestAdaptDetectsDimensionMismatch(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "model.json")
	old := os.Stdout
	devNull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devNull
	err := run([]string{"train", "-dataset", "synthetic", "-nodes", "8", "-t", "10", "-t0", "5", "-save", ckPath})
	os.Stdout = old
	devNull.Close()
	if err != nil {
		t.Fatal(err)
	}
	// A synthetic checkpoint (60-dim) against the MNIST workload (784-dim).
	if err := run([]string{"adapt", "-checkpoint", ckPath, "-dataset", "mnist", "-nodes", "8", "-target", "0"}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestCommonFlagWorkloads(t *testing.T) {
	for _, dataset := range []string{"synthetic", "mnist", "sent140"} {
		c := &commonFlags{dataset: dataset, nodes: 8, k: 5, seed: 1}
		fed, m, err := c.buildWorkload()
		if err != nil {
			t.Fatalf("%s: %v", dataset, err)
		}
		if fed == nil || m == nil {
			t.Fatalf("%s: nil workload", dataset)
		}
		if m.NumParams() <= 0 {
			t.Fatalf("%s: empty model", dataset)
		}
	}
}

func TestMaxInt(t *testing.T) {
	if maxInt(2, 3) != 3 || maxInt(5, 1) != 5 {
		t.Error("maxInt broken")
	}
}

// quiet redirects stdout to /dev/null for the duration of fn.
func quiet(t *testing.T, fn func() error) error {
	t.Helper()
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() {
		os.Stdout = old
		devNull.Close()
	}()
	return fn()
}

func TestTrainWithChaosScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos CLI run in -short mode")
	}
	err := quiet(t, func() error {
		return run([]string{"train", "-dataset", "synthetic", "-nodes", "6", "-k", "3",
			"-t", "30", "-t0", "5", "-seed", "7",
			"-round-timeout", "500ms", "-guard", "25",
			"-chaos", "1:kill@2,1:revive@4,2:corrupt@3", "-chaos-seed", "11"})
	})
	if err != nil {
		t.Fatalf("chaos train: %v", err)
	}
}

func TestTrainRejectsBadChaosScenario(t *testing.T) {
	err := run([]string{"train", "-t", "10", "-t0", "5",
		"-round-timeout", "100ms", "-chaos", "1:explode@2"})
	if err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Errorf("bad scenario: %v", err)
	}
}

func TestTrainCheckpointAndResume(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "run.state")
	args := []string{"train", "-dataset", "synthetic", "-nodes", "6", "-k", "3",
		"-t", "20", "-t0", "5", "-seed", "3", "-state", statePath}
	if err := quiet(t, func() error { return run(args) }); err != nil {
		t.Fatalf("train with -state: %v", err)
	}
	if _, err := os.Stat(statePath); err != nil {
		t.Fatalf("run state not written: %v", err)
	}
	// Resuming from the completed run's snapshot must succeed (the platform
	// sees the final round already done and finishes immediately).
	if err := quiet(t, func() error { return run(append(args, "-resume")) }); err != nil {
		t.Fatalf("train -resume: %v", err)
	}
}

func TestTrainResumeRequiresState(t *testing.T) {
	if err := run([]string{"train", "-t", "10", "-t0", "5", "-resume"}); err == nil {
		t.Error("-resume without -state accepted")
	}
}

func TestTrainFromCSV(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "d.csv")
	var b strings.Builder
	for c := 0; c < 4; c++ {
		for i := 0; i < 40; i++ {
			fmt.Fprintf(&b, "%d,%d,0.5,%d\n", c, i%7, c)
		}
	}
	if err := os.WriteFile(csvPath, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	devNull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devNull
	err := run([]string{"train", "-dataset", "csv", "-csv", csvPath, "-csv-dim", "3",
		"-nodes", "6", "-k", "3", "-t", "10", "-t0", "5"})
	os.Stdout = old
	devNull.Close()
	if err != nil {
		t.Fatalf("csv train: %v", err)
	}
	// Missing flags must error.
	if err := run([]string{"train", "-dataset", "csv", "-t", "10", "-t0", "5"}); err == nil {
		t.Error("csv without path accepted")
	}
}

// TestTrainMetricsOut drives the full -metrics-out path: a chaos run must
// leave a parseable, schema-versioned JSONL trail with one record per
// round, monotone round numbers, and a loss attached to the sampled rounds.
func TestTrainMetricsOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.jsonl")
	err := quiet(t, func() error {
		return run([]string{"train", "-dataset", "synthetic", "-nodes", "6", "-k", "3",
			"-t", "30", "-t0", "5", "-seed", "7",
			"-round-timeout", "500ms", "-guard", "25",
			"-chaos", "1:kill@2,1:revive@4", "-chaos-seed", "11",
			"-metrics-out", path})
	})
	if err != nil {
		t.Fatalf("train -metrics-out: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 6 {
		t.Fatalf("only %d metric records for a 6-round run", len(lines))
	}
	prevRound := 0
	sawLoss := false
	for k, line := range lines {
		var rec obs.RoundRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d unparseable: %v", k+1, err)
		}
		if rec.Schema != obs.SchemaVersion {
			t.Fatalf("line %d schema %d, want %d", k+1, rec.Schema, obs.SchemaVersion)
		}
		if rec.Round <= prevRound {
			t.Fatalf("line %d round %d not above %d", k+1, rec.Round, prevRound)
		}
		prevRound = rec.Round
		if rec.Loss != nil {
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Error("no record carries the sampled meta-loss")
	}
}

// TestTrainMetricsOutRejectsBadPath surfaces sink-creation failures instead
// of silently training without metrics.
func TestTrainMetricsOutRejectsBadPath(t *testing.T) {
	err := run([]string{"train", "-t", "10", "-t0", "5",
		"-metrics-out", filepath.Join(t.TempDir(), "no", "such", "dir", "m.jsonl")})
	if err == nil {
		t.Error("unwritable metrics path accepted")
	}
}
