package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRequiresMode(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no-args run succeeded")
	}
	if err := run([]string{"bogus"}); err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Errorf("bogus mode: %v", err)
	}
}

func TestTrainAndAdaptEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "model.json")

	// Silence the CLI's stdout chatter during tests.
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() {
		os.Stdout = old
		devNull.Close()
	}()

	err = run([]string{"train", "-dataset", "synthetic", "-nodes", "8", "-t", "20", "-t0", "5", "-save", ckPath})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	if _, err := os.Stat(ckPath); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	err = run([]string{"adapt", "-dataset", "synthetic", "-nodes", "8", "-checkpoint", ckPath, "-target", "0", "-steps", "2"})
	if err != nil {
		t.Fatalf("adapt: %v", err)
	}
}

func TestTrainRejectsBadDataset(t *testing.T) {
	if err := run([]string{"train", "-dataset", "imagenet", "-t", "10", "-t0", "5"}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestAdaptRequiresCheckpoint(t *testing.T) {
	if err := run([]string{"adapt"}); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Errorf("missing -checkpoint: %v", err)
	}
	if err := run([]string{"adapt", "-checkpoint", "/nonexistent/model.json"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestAdaptRejectsOutOfRangeTarget(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "model.json")
	old := os.Stdout
	devNull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devNull
	err := run([]string{"train", "-dataset", "synthetic", "-nodes", "8", "-t", "10", "-t0", "5", "-save", ckPath})
	os.Stdout = old
	devNull.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"adapt", "-checkpoint", ckPath, "-nodes", "8", "-target", "99"}); err == nil {
		t.Error("out-of-range target accepted")
	}
}

func TestAdaptDetectsDimensionMismatch(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "model.json")
	old := os.Stdout
	devNull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devNull
	err := run([]string{"train", "-dataset", "synthetic", "-nodes", "8", "-t", "10", "-t0", "5", "-save", ckPath})
	os.Stdout = old
	devNull.Close()
	if err != nil {
		t.Fatal(err)
	}
	// A synthetic checkpoint (60-dim) against the MNIST workload (784-dim).
	if err := run([]string{"adapt", "-checkpoint", ckPath, "-dataset", "mnist", "-nodes", "8", "-target", "0"}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestCommonFlagWorkloads(t *testing.T) {
	for _, dataset := range []string{"synthetic", "mnist", "sent140"} {
		c := &commonFlags{dataset: dataset, nodes: 8, k: 5, seed: 1}
		fed, m, err := c.buildWorkload()
		if err != nil {
			t.Fatalf("%s: %v", dataset, err)
		}
		if fed == nil || m == nil {
			t.Fatalf("%s: nil workload", dataset)
		}
		if m.NumParams() <= 0 {
			t.Fatalf("%s: empty model", dataset)
		}
	}
}

func TestMaxInt(t *testing.T) {
	if maxInt(2, 3) != 3 || maxInt(5, 1) != 5 {
		t.Error("maxInt broken")
	}
}

func TestTrainFromCSV(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "d.csv")
	var b strings.Builder
	for c := 0; c < 4; c++ {
		for i := 0; i < 40; i++ {
			fmt.Fprintf(&b, "%d,%d,0.5,%d\n", c, i%7, c)
		}
	}
	if err := os.WriteFile(csvPath, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	devNull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devNull
	err := run([]string{"train", "-dataset", "csv", "-csv", csvPath, "-csv-dim", "3",
		"-nodes", "6", "-k", "3", "-t", "10", "-t0", "5"})
	os.Stdout = old
	devNull.Close()
	if err != nil {
		t.Fatalf("csv train: %v", err)
	}
	// Missing flags must error.
	if err := run([]string{"train", "-dataset", "csv", "-t", "10", "-t0", "5"}); err == nil {
		t.Error("csv without path accepted")
	}
}
