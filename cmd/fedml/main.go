// Command fedml trains a federated meta-model and fast-adapts it at target
// edge nodes. It has four modes:
//
//	fedml train     — single-process simulation over in-memory links
//	fedml platform  — the aggregation platform side of a real TCP deployment
//	fedml node      — one source edge node joining a TCP platform
//	fedml adapt     — a target device: load a checkpoint (train -save) and
//	                  fast-adapt it on one target node's K local samples
//
// The TCP modes run the same Algorithm 1/2 code as train, but across
// processes (or machines): start the platform first, then one node process
// per source node. All sides derive the same federation from -dataset/-seed,
// so no data is shipped — only model parameters cross the network, as in the
// paper's architecture.
//
// Examples:
//
//	fedml train -dataset synthetic -t 500 -t0 10
//	fedml train -dataset mnist -robust -lambda 0.01
//	fedml train -t 60 -round-timeout 500ms -guard 25 -chaos "1:kill@2,1:revive@5,2:corrupt@4"
//
//	fedml platform -addr :7001 -dataset synthetic -nodes 8
//	for i in $(seq 0 7); do fedml node -addr localhost:7001 -dataset synthetic -id $i & done
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof: registers /debug/pprof on the default mux
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/edgeai/fedml/internal/checkpoint"
	"github.com/edgeai/fedml/internal/core"
	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/meta"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fedml:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: fedml <train|platform|node> [flags]")
	}
	switch args[0] {
	case "train":
		return runTrain(args[1:])
	case "platform":
		return runPlatform(args[1:])
	case "node":
		return runNode(args[1:])
	case "adapt":
		return runAdapt(args[1:])
	default:
		return fmt.Errorf("unknown mode %q (want train, platform, node or adapt)", args[0])
	}
}

// commonFlags holds the flags shared by all modes.
type commonFlags struct {
	dataset string
	nodes   int
	k       int
	seed    uint64
	alpha   float64
	beta    float64
	t       int
	t0      int
	robust  bool
	lambda  float64
	csvPath string
	csvDim  int
	workers int
	codec   string

	syncMask      string
	energyProfile string
	energyJPerIt  float64
	energyBudget  float64
}

func addCommonFlags(fs *flag.FlagSet) *commonFlags {
	c := &commonFlags{}
	fs.StringVar(&c.dataset, "dataset", "synthetic", "workload: synthetic, mnist, sent140, rec, fault or csv")
	fs.IntVar(&c.nodes, "nodes", 20, "number of edge nodes in the federation")
	fs.IntVar(&c.k, "k", 5, "few-shot training-set size K per node")
	fs.Uint64Var(&c.seed, "seed", 1, "random seed (all sides must agree)")
	fs.Float64Var(&c.alpha, "alpha", 0.05, "inner (adaptation) learning rate α")
	fs.Float64Var(&c.beta, "beta", 0.01, "meta learning rate β")
	fs.IntVar(&c.t, "t", 200, "total local iterations T")
	fs.IntVar(&c.t0, "t0", 5, "local iterations per aggregation round T0")
	fs.BoolVar(&c.robust, "robust", false, "use Robust FedML (Algorithm 2)")
	fs.Float64Var(&c.lambda, "lambda", 0.01, "DRO penalty λ (with -robust)")
	fs.StringVar(&c.csvPath, "csv", "", "with -dataset csv: path to a CSV of feature columns + integer label")
	fs.IntVar(&c.csvDim, "csv-dim", 0, "with -dataset csv: number of feature columns")
	fs.IntVar(&c.workers, "workers", 0, "worker count for evaluation fan-out (0 = all cores, 1 = serial); results are identical for every value")
	fs.StringVar(&c.codec, "codec", "", "update compression codec: raw, f16, q8, or topk[:frac] (empty = raw; nodes mirror the platform's choice)")
	fs.StringVar(&c.syncMask, "sync-mask", "", `partial-parameter sync policy: "head:<warmup>" freezes the feature layers after <warmup> full-sync rounds and syncs only the output head (nodes mirror the mask from the wire format)`)
	fs.StringVar(&c.energyProfile, "energy-profile", "", "per-node energy pricing profile: lora-like, wifi, or datacenter (enables joule accounting)")
	fs.Float64Var(&c.energyJPerIt, "energy-compute", 1e-4, "with -energy-profile: modeled compute joules per local iteration")
	fs.Float64Var(&c.energyBudget, "energy-budget", 0, "per-node per-round energy budget in joules; nodes whose modeled round cost exceeds it sit the round out (requires -energy-profile; 0 = unlimited)")
	return c
}

// applyPolicies resolves the model-dependent sync-mask and energy flags into
// cfg. It runs on the aggregation side (train, platform): nodes mirror the
// mask from the self-describing payloads and need no configuration.
func (c *commonFlags) applyPolicies(cfg *core.Config, m nn.Model) error {
	mask, err := core.ResolveSyncMask(c.syncMask, m)
	if err != nil {
		return err
	}
	cfg.SyncMask = mask
	if c.energyProfile != "" {
		em, ok := core.EnergyProfiles(c.energyJPerIt)[c.energyProfile]
		if !ok {
			return fmt.Errorf("unknown -energy-profile %q (want lora-like, wifi or datacenter)", c.energyProfile)
		}
		cfg.Energy = &em
	}
	if c.energyBudget > 0 {
		if cfg.Energy == nil {
			return fmt.Errorf("-energy-budget requires -energy-profile")
		}
		cfg.EnergyBudget = c.energyBudget
	}
	return nil
}

// buildWorkload constructs the federation and model for the CLI flags.
func (c *commonFlags) buildWorkload() (*data.Federation, nn.Model, error) {
	switch c.dataset {
	case "synthetic":
		cfg := data.DefaultSyntheticConfig(0.5, 0.5)
		cfg.Nodes = c.nodes
		cfg.K = c.k
		cfg.Seed = c.seed
		fed, err := data.GenerateSynthetic(cfg)
		if err != nil {
			return nil, nil, err
		}
		return fed, &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses, L2: 0.01}, nil
	case "mnist":
		cfg := data.DefaultMNISTConfig()
		cfg.Nodes = c.nodes
		cfg.K = c.k
		cfg.Seed = c.seed
		fed, err := data.GenerateMNIST(cfg)
		if err != nil {
			return nil, nil, err
		}
		return fed, &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses, L2: 0.01}, nil
	case "sent140":
		cfg := data.DefaultSent140Config()
		cfg.Nodes = c.nodes
		cfg.K = c.k
		cfg.Seed = c.seed
		cfg.EmbedDim = 24
		cfg.SeqLen = 15
		fed, err := data.GenerateSent140(cfg)
		if err != nil {
			return nil, nil, err
		}
		m, err := nn.NewMLP(nn.MLPConfig{Dims: []int{fed.Dim, 64, 32, 16, fed.NumClasses}, BatchNorm: true})
		if err != nil {
			return nil, nil, err
		}
		return fed, m, nil
	case "rec":
		cfg := data.DefaultRecommendConfig()
		cfg.Users = c.nodes
		cfg.K = c.k
		cfg.Seed = c.seed
		fed, err := data.GenerateRecommend(cfg)
		if err != nil {
			return nil, nil, err
		}
		// An MLP (not all-head softmax) so sync-mask and repshare-style
		// partial policies have a representation block to act on.
		m, err := nn.NewMLP(nn.MLPConfig{Dims: []int{fed.Dim, 16, fed.NumClasses}, L2: 0.01})
		if err != nil {
			return nil, nil, err
		}
		return fed, m, nil
	case "fault":
		cfg := data.DefaultFaultConfig()
		cfg.Devices = c.nodes
		cfg.K = c.k
		cfg.Seed = c.seed
		fed, err := data.GenerateFault(cfg)
		if err != nil {
			return nil, nil, err
		}
		m, err := nn.NewMLP(nn.MLPConfig{Dims: []int{fed.Dim, 16, fed.NumClasses}, L2: 0.01})
		if err != nil {
			return nil, nil, err
		}
		return fed, m, nil
	case "csv":
		if c.csvPath == "" || c.csvDim <= 0 {
			return nil, nil, fmt.Errorf("-dataset csv requires -csv <path> and -csv-dim <n>")
		}
		samples, classes, err := data.LoadCSVFile(c.csvPath, c.csvDim)
		if err != nil {
			return nil, nil, err
		}
		fed, err := data.BuildFederation("csv:"+c.csvPath, samples, classes, data.PartitionConfig{
			Nodes:          c.nodes,
			ClassesPerNode: 2, // the paper's label-skew level
			K:              c.k,
			SourceFraction: 0.8,
			Seed:           c.seed,
		})
		if err != nil {
			return nil, nil, err
		}
		return fed, &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses, L2: 0.01}, nil
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q (want synthetic, mnist, sent140, rec, fault or csv)", c.dataset)
	}
}

// faultFlags holds the resilience and chaos-injection flags shared by the
// train and platform modes.
type faultFlags struct {
	roundTimeout   time.Duration
	minNodes       int
	guard          float64
	statePath      string
	stateEvery     int
	resume         bool
	async          bool
	stalenessDecay float64
	maxStaleness   int
	asyncQuorum    float64
	chaosSpec      string
	chaosSeed      uint64
	chaosDrop      float64
	chaosCorrupt   float64
	chaosLatency   time.Duration
	chaosJitter    time.Duration
}

func addFaultFlags(fs *flag.FlagSet) *faultFlags {
	f := &faultFlags{}
	fs.DurationVar(&f.roundTimeout, "round-timeout", 0, "per-operation deadline enabling fault-tolerant rounds with drop/rejoin (0 = strict)")
	fs.IntVar(&f.minNodes, "min-nodes", 0, "abort a fault-tolerant run when fewer nodes remain alive (0 means 1)")
	fs.Float64Var(&f.guard, "guard", 0, "sanitation guard radius relative to broadcast θ (0 disables the norm guard)")
	fs.StringVar(&f.statePath, "state", "", "snapshot (round, iter, θ, stats) to this file for crash recovery")
	fs.IntVar(&f.stateEvery, "state-every", 1, "with -state: snapshot every N aggregated rounds")
	fs.BoolVar(&f.resume, "resume", false, "resume from the -state snapshot when it exists")
	fs.BoolVar(&f.async, "async", false, "buffered-async aggregation: apply updates as they arrive with staleness-decayed weights (requires -round-timeout)")
	fs.Float64Var(&f.stalenessDecay, "staleness-decay", 0.6, "with -async: per-round weight decay α for stale updates (w = ω·α^staleness)")
	fs.IntVar(&f.maxStaleness, "max-staleness", 4, "with -async: drop updates (and suspect nodes) more than this many aggregations behind")
	fs.Float64Var(&f.asyncQuorum, "async-quorum", 0.8, "with -async: fraction of the round's dispatched updates to wait for before aggregating")
	fs.StringVar(&f.chaosSpec, "chaos", "", `scripted faults "<node>:<op>@<round>,..." with ops kill, revive, part-send, part-recv, heal, corrupt, drop, send-err, slow=<dur>`)
	fs.Uint64Var(&f.chaosSeed, "chaos-seed", 1, "seed for the injected-fault random streams")
	fs.Float64Var(&f.chaosDrop, "chaos-drop", 0, "per-message drop probability")
	fs.Float64Var(&f.chaosCorrupt, "chaos-corrupt", 0, "per-update payload corruption probability")
	fs.DurationVar(&f.chaosLatency, "chaos-latency", 0, "mean injected per-message latency")
	fs.DurationVar(&f.chaosJitter, "chaos-jitter", 0, "injected latency jitter")
	return f
}

// apply folds the fault flags into cfg, building the chaos link wrapper when
// any injection was requested.
func (f *faultFlags) apply(cfg *core.Config) error {
	cfg.RoundTimeout = f.roundTimeout
	cfg.MinNodes = f.minNodes
	cfg.GuardRadius = f.guard
	cfg.CheckpointPath = f.statePath
	cfg.CheckpointEvery = f.stateEvery
	cfg.Resume = f.resume
	if f.async {
		cfg.Async = true
		cfg.StalenessDecay = f.stalenessDecay
		cfg.MaxStaleness = f.maxStaleness
		cfg.AsyncQuorum = f.asyncQuorum
	}
	chaosOn := f.chaosSpec != "" || f.chaosDrop > 0 || f.chaosCorrupt > 0 ||
		f.chaosLatency > 0 || f.chaosJitter > 0
	if !chaosOn {
		return nil
	}
	events, err := transport.ParseScenario(f.chaosSpec)
	if err != nil {
		return err
	}
	cfg.WrapLink = func(i int, l transport.Link) transport.Link {
		return transport.NewChaos(l, transport.ChaosConfig{
			Seed:        f.chaosSeed + uint64(i)*0x9e3779b9,
			DropProb:    f.chaosDrop,
			CorruptProb: f.chaosCorrupt,
			Latency:     f.chaosLatency,
			Jitter:      f.chaosJitter,
			Scenario:    events[i],
		})
	}
	return nil
}

// obsFlags holds the observability flags shared by the train and platform
// modes.
type obsFlags struct {
	metricsOut string
	pprofAddr  string
}

func addObsFlags(fs *flag.FlagSet) *obsFlags {
	o := &obsFlags{}
	fs.StringVar(&o.metricsOut, "metrics-out", "", "write per-round metrics as JSON lines (schema-versioned) to this file")
	fs.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof and expvar comm counters on this address (e.g. localhost:6060)")
	return o
}

// start builds the observer stack the flags requested: a JSONL metrics sink,
// and — when a pprof address is given — an expvar mirror of the comm
// counters served next to /debug/pprof. The returned close function flushes
// the metrics file; run it once training ends. With no flags set it returns
// a nil observer, which the training stack treats as zero-overhead.
func (o *obsFlags) start() (obs.RoundObserver, func() error, error) {
	var observers []obs.RoundObserver
	closeFn := func() error { return nil }
	if o.metricsOut != "" {
		sink, err := obs.CreateJSONL(o.metricsOut)
		if err != nil {
			return nil, nil, err
		}
		observers = append(observers, sink)
		closeFn = sink.Close
	}
	if o.pprofAddr != "" {
		observers = append(observers, obs.NewExpvarSink("fedml.comm"))
		ln, err := net.Listen("tcp", o.pprofAddr)
		if err != nil {
			return nil, nil, fmt.Errorf("pprof listen %s: %w", o.pprofAddr, err)
		}
		fmt.Printf("profiling: http://%s/debug/pprof/ (comm counters at /debug/vars)\n", ln.Addr())
		go func() { _ = http.Serve(ln, nil) }()
	}
	return obs.Multi(observers...), closeFn, nil
}

// printResilience summarizes the fault accounting of a finished run.
func printResilience(stats core.CommStats) {
	if stats.Dropped+stats.Rejoined+stats.Rejected+stats.SkippedRounds+stats.StaleApplied+stats.StaleDropped+stats.BudgetFiltered == 0 {
		return
	}
	fmt.Printf("resilience: %d dropped, %d rejoined, %d updates rejected, %d rounds skipped\n",
		stats.Dropped, stats.Rejoined, stats.Rejected, stats.SkippedRounds)
	if stats.StaleApplied+stats.StaleDropped > 0 {
		fmt.Printf("staleness: %d updates applied late (decayed), %d dropped past the bound\n",
			stats.StaleApplied, stats.StaleDropped)
	}
	if stats.BudgetFiltered > 0 {
		fmt.Printf("budget: %d node-rounds sat out over the energy/deadline budget\n", stats.BudgetFiltered)
	}
}

func (c *commonFlags) trainConfig(track func(round, iter int, theta tensor.Vec)) core.Config {
	cfg := core.Config{
		Alpha: c.alpha, Beta: c.beta, T: c.t, T0: c.t0, Seed: c.seed,
		Codec:   c.codec,
		OnRound: track,
	}
	if c.robust {
		cfg.Robust = &core.RobustConfig{
			Lambda: c.lambda, Nu: 1, Ta: 10, N0: maxInt(1, c.t*2/5/c.t0), R: 2,
			ClampMin: 0, ClampMax: 1,
		}
	}
	return cfg
}

func runTrain(args []string) error {
	fs := flag.NewFlagSet("fedml train", flag.ContinueOnError)
	c := addCommonFlags(fs)
	ff := addFaultFlags(fs)
	of := addObsFlags(fs)
	shards := fs.Int("shards", 0, "two-tier topology: number of leaf shard aggregators under a director (0 = flat platform); θ is bit-identical to the flat run")
	adaptSteps := fs.Int("adapt-steps", 5, "fast-adaptation gradient steps at target nodes")
	savePath := fs.String("save", "", "write the trained meta-model checkpoint to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fed, m, err := c.buildWorkload()
	if err != nil {
		return err
	}
	fmt.Printf("federation %s: %d source nodes, %d target nodes, dim %d, %d classes\n",
		fed.Name, len(fed.Sources), len(fed.Targets), fed.Dim, fed.NumClasses)

	ob, closeObs, err := of.start()
	if err != nil {
		return err
	}
	cfg := c.trainConfig(func(round, iter int, theta tensor.Vec) {
		if round%5 == 0 || iter == c.t {
			g := eval.GlobalMetaObjectiveN(m, fed, c.alpha, theta, c.workers)
			fmt.Printf("round %4d (iter %5d): G(θ) = %.4f\n", round, iter, g)
			// OnRound fires after the round's end event, so the sinks fold
			// this measurement into the record of the round it belongs to.
			obs.Emit(ob, obs.Event{Type: obs.TypeMetaLoss, Round: round, Iter: iter, Value: g})
		}
	})
	cfg.Observer = ob
	if err := c.applyPolicies(&cfg, m); err != nil {
		return err
	}
	if err := ff.apply(&cfg); err != nil {
		return err
	}
	var (
		theta tensor.Vec
		comm  core.CommStats
	)
	if *shards > 0 {
		if cfg.Async {
			return fmt.Errorf("-async is not supported with -shards (the async consistency model is flat-platform only)")
		}
		theta, comm, err = trainSharded(m, fed, cfg, *shards, of.metricsOut)
	} else {
		var res *core.Result
		res, err = core.Train(m, fed, nil, cfg)
		if res != nil {
			theta, comm = res.Theta, res.Comm
		}
	}
	if err != nil {
		_ = closeObs()
		return err
	}
	if err := closeObs(); err != nil {
		return err
	}
	if of.metricsOut != "" {
		fmt.Printf("per-round metrics written to %s\n", of.metricsOut)
	}
	fmt.Printf("training done: %d rounds, %d messages, %.1f KiB transferred\n",
		comm.Rounds, comm.Messages, float64(comm.Bytes)/1024)
	printResilience(comm)

	curve := eval.AverageAdaptationCurveN(m, theta, fed.Targets, c.alpha, *adaptSteps, c.workers)
	fmt.Println("fast adaptation at held-out target nodes:")
	for _, p := range curve {
		fmt.Printf("  step %2d: loss %.4f  accuracy %.3f\n", p.Step, p.Loss, p.Accuracy)
	}

	if *savePath != "" {
		desc := fmt.Sprintf("FedML %s nodes=%d T=%d T0=%d", c.dataset, c.nodes, c.t, c.t0)
		ck, err := checkpoint.FromModel(m, theta, c.alpha, desc)
		if err != nil {
			return err
		}
		if err := checkpoint.SaveFile(*savePath, ck); err != nil {
			return err
		}
		fmt.Printf("checkpoint written to %s\n", *savePath)
	}
	return nil
}

// shardMetricsPath derives the per-shard metrics file from the root path by
// inserting ".shard<N>" before the extension: metrics.jsonl →
// metrics.shard0.jsonl.
func shardMetricsPath(path string, shard int) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.shard%d%s", strings.TrimSuffix(path, ext), shard, ext)
}

// trainSharded runs training through the two-tier topology: the nodes are
// partitioned into shard aggregators under a director. With -metrics-out set,
// each shard writes its own JSONL stream next to the director's — the shard
// streams carry the traffic and fault events, the director stream the global
// rounds, and each validates independently under cmd/obscheck.
func trainSharded(m nn.Model, fed *data.Federation, cfg core.Config, shards int, metricsOut string) (tensor.Vec, core.CommStats, error) {
	ranges := core.ShardRanges(len(fed.Sources), shards)
	opt := core.ShardedOptions{Ranges: ranges}
	sinks := make([]*obs.JSONLSink, 0, len(ranges))
	closeSinks := func() error {
		var first error
		for _, s := range sinks {
			if err := s.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if metricsOut != "" {
		// The sinks are pre-created here because ShardObserver cannot fail.
		for s := range ranges {
			sink, err := obs.CreateJSONL(shardMetricsPath(metricsOut, s))
			if err != nil {
				_ = closeSinks()
				return nil, core.CommStats{}, err
			}
			sinks = append(sinks, sink)
		}
		opt.ShardObserver = func(shard int) obs.RoundObserver { return sinks[shard] }
	}
	fmt.Printf("two-tier topology: %d shard aggregators over %d nodes\n", len(ranges), len(fed.Sources))
	res, err := core.TrainSharded(m, fed, nil, cfg, opt)
	if err != nil {
		_ = closeSinks()
		return nil, core.CommStats{}, err
	}
	if err := closeSinks(); err != nil {
		return nil, core.CommStats{}, err
	}
	for s, st := range res.Shards {
		fmt.Printf("  shard %d (nodes %d..%d): %d messages, %.1f KiB\n",
			s, ranges[s].Lo, ranges[s].Hi-1, st.Messages, float64(st.Bytes)/1024)
	}
	return res.Theta, res.Comm, nil
}

// runAdapt plays the target edge device: load a meta-model checkpoint,
// adapt it with a few gradient steps on one target node's K-sample training
// set, and report test performance — real-time edge intelligence from a
// file.
func runAdapt(args []string) error {
	fs := flag.NewFlagSet("fedml adapt", flag.ContinueOnError)
	c := addCommonFlags(fs)
	ckPath := fs.String("checkpoint", "", "checkpoint produced by fedml train -save (required)")
	target := fs.Int("target", 0, "index of the target node to adapt for")
	steps := fs.Int("steps", 1, "adaptation gradient steps")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ckPath == "" {
		return fmt.Errorf("adapt: -checkpoint is required")
	}
	ck, err := checkpoint.LoadFile(*ckPath)
	if err != nil {
		return err
	}
	m, err := ck.Model()
	if err != nil {
		return err
	}
	fed, _, err := c.buildWorkload()
	if err != nil {
		return err
	}
	if fed.Dim*fed.NumClasses == 0 || m.NumParams() == 0 {
		return fmt.Errorf("adapt: degenerate workload or model")
	}
	if *target < 0 || *target >= len(fed.Targets) {
		return fmt.Errorf("adapt: target %d out of range [0, %d)", *target, len(fed.Targets))
	}
	node := fed.Targets[*target]
	if len(node.Train[0].X) != ckModelInputDim(m) {
		return fmt.Errorf("adapt: checkpoint expects %d-dim inputs, dataset provides %d",
			ckModelInputDim(m), len(node.Train[0].X))
	}

	theta := tensor.Vec(ck.Params)
	fmt.Printf("checkpoint: %s (α=%g)\n", ck.Description, ck.Alpha)
	fmt.Printf("before adaptation: loss %.4f accuracy %.3f\n",
		m.Loss(theta, node.Test), nn.Accuracy(m, theta, node.Test))
	phi := meta.Adapt(m, theta, node.Train, ck.Alpha, *steps)
	fmt.Printf("after %d step(s):   loss %.4f accuracy %.3f\n",
		*steps, m.Loss(phi, node.Test), nn.Accuracy(m, phi, node.Test))
	return nil
}

// ckModelInputDim reports the input dimension of a reconstructed model.
func ckModelInputDim(m nn.Model) int {
	switch mt := m.(type) {
	case *nn.SoftmaxRegression:
		return mt.In
	case *nn.MLP:
		return mt.InputDim()
	default:
		return -1
	}
}

func runPlatform(args []string) error {
	fs := flag.NewFlagSet("fedml platform", flag.ContinueOnError)
	c := addCommonFlags(fs)
	ff := addFaultFlags(fs)
	of := addObsFlags(fs)
	addr := fs.String("addr", ":7001", "listen address for node connections")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fed, m, err := c.buildWorkload()
	if err != nil {
		return err
	}
	n := len(fed.Sources)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	defer ln.Close()
	fmt.Printf("platform listening on %s, waiting for %d nodes...\n", ln.Addr(), n)

	links, err := transport.Accept(ln, n)
	if err != nil {
		return err
	}
	defer func() {
		for _, l := range links {
			_ = l.Close()
		}
	}()
	fmt.Println("all nodes connected; starting federated meta-training")

	// TCP accept order is arbitrary, so the platform cannot match links to
	// per-node data sizes; aggregate uniformly (nodes identify themselves in
	// their updates, but uniform weights keep the protocol stateless).
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1
	}
	theta0 := m.InitParams(rng.New(c.seed))
	ob, closeObs, err := of.start()
	if err != nil {
		return err
	}
	cfg := c.trainConfig(func(round, iter int, theta tensor.Vec) {
		g := eval.GlobalMetaObjectiveN(m, fed, c.alpha, theta, c.workers)
		fmt.Printf("round %4d (iter %5d): G(θ) = %.4f\n", round, iter, g)
		obs.Emit(ob, obs.Event{Type: obs.TypeMetaLoss, Round: round, Iter: iter, Value: g})
	})
	cfg.Observer = ob
	if err := c.applyPolicies(&cfg, m); err != nil {
		return err
	}
	if err := ff.apply(&cfg); err != nil {
		return err
	}
	// RunPlatform takes pre-built links, so the chaos wrapper (normally
	// applied by Train) is applied here.
	if cfg.WrapLink != nil {
		for i := range links {
			links[i] = cfg.WrapLink(i, links[i])
		}
	}
	runPlat := core.RunPlatform
	if cfg.Async {
		runPlat = core.RunAsyncPlatform
	}
	theta, stats, err := runPlat(links, weights, theta0, cfg)
	if err != nil {
		_ = closeObs()
		return err
	}
	if err := closeObs(); err != nil {
		return err
	}
	if of.metricsOut != "" {
		fmt.Printf("per-round metrics written to %s\n", of.metricsOut)
	}
	fmt.Printf("done: %d rounds, %d messages, %.1f KiB\n", stats.Rounds, stats.Messages, float64(stats.Bytes)/1024)
	printResilience(stats)

	curve := eval.AverageAdaptationCurveN(m, theta, fed.Targets, c.alpha, 5, c.workers)
	fmt.Println("fast adaptation at held-out target nodes:")
	for _, p := range curve {
		fmt.Printf("  step %2d: loss %.4f  accuracy %.3f\n", p.Step, p.Loss, p.Accuracy)
	}
	return nil
}

func runNode(args []string) error {
	fs := flag.NewFlagSet("fedml node", flag.ContinueOnError)
	c := addCommonFlags(fs)
	addr := fs.String("addr", "localhost:7001", "platform address")
	id := fs.Int("id", 0, "this node's index among the federation's source nodes")
	retries := fs.Int("retries", 0, "retry attempts for transient link errors (0 = fail fast)")
	retryBase := fs.Duration("retry-base", 20*time.Millisecond, "initial retry backoff (doubles per attempt, with jitter)")
	redial := fs.Bool("redial", false, "re-dial the platform between retry attempts")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fed, m, err := c.buildWorkload()
	if err != nil {
		return err
	}
	if *id < 0 || *id >= len(fed.Sources) {
		return fmt.Errorf("node id %d out of range [0, %d)", *id, len(fed.Sources))
	}
	link, err := transport.Dial(*addr)
	if err != nil {
		return err
	}
	defer link.Close()
	fmt.Printf("node %d connected to %s (%d local samples)\n", *id, *addr, fed.Sources[*id].Size())

	nc := core.NodeConfig{
		ID:     *id,
		Model:  m,
		Data:   fed.Sources[*id],
		Shared: c.trainConfig(nil),
		Retry:  core.RetryPolicy{MaxAttempts: *retries, BaseDelay: *retryBase},
	}
	if *redial {
		nc.Redial = func() (transport.Link, error) { return transport.Dial(*addr) }
	}
	err = core.RunNode(link, nc)
	if err != nil {
		return err
	}
	fmt.Printf("node %d finished\n", *id)
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
