package main

import (
	"os"
	"strings"
	"testing"
)

// silenceStdout redirects stdout to /dev/null for the duration of fn.
func silenceStdout(t *testing.T, fn func() error) error {
	t.Helper()
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() {
		os.Stdout = old
		devNull.Close()
	}()
	return fn()
}

func TestListFlag(t *testing.T) {
	if err := silenceStdout(t, func() error { return run([]string{"-list"}) }); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	err := silenceStdout(t, func() error { return run([]string{"-exp", "fig99"}) })
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown experiment: %v", err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := silenceStdout(t, func() error { return run([]string{"-exp", "table1"}) }); err != nil {
		t.Fatal(err)
	}
}

func TestBadFlag(t *testing.T) {
	// flag.ContinueOnError surfaces parse failures as errors, not exits.
	err := silenceStdout(t, func() error { return run([]string{"-definitely-not-a-flag"}) })
	if err == nil {
		t.Error("bad flag accepted")
	}
}
