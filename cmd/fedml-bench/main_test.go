package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// silenceStdout redirects stdout to /dev/null for the duration of fn.
func silenceStdout(t *testing.T, fn func() error) error {
	t.Helper()
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() {
		os.Stdout = old
		devNull.Close()
	}()
	return fn()
}

func TestListFlag(t *testing.T) {
	if err := silenceStdout(t, func() error { return run([]string{"-list"}) }); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	err := silenceStdout(t, func() error { return run([]string{"-exp", "fig99"}) })
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown experiment: %v", err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := silenceStdout(t, func() error { return run([]string{"-exp", "table1"}) }); err != nil {
		t.Fatal(err)
	}
}

func TestBadFlag(t *testing.T) {
	// flag.ContinueOnError surfaces parse failures as errors, not exits.
	err := silenceStdout(t, func() error { return run([]string{"-definitely-not-a-flag"}) })
	if err == nil {
		t.Error("bad flag accepted")
	}
}

// Regression for the Degenerate flag: it used to be derived from
// runtime.GOMAXPROCS alone, so a `-workers 1` run on a multi-core box was
// recorded as a non-degenerate ~1.0× "speedup". It must depend on the
// parallelism the run actually used.
func TestDegenerateRun(t *testing.T) {
	cases := []struct {
		workers, gomaxprocs int
		want                bool
	}{
		{workers: 1, gomaxprocs: 8, want: true}, // the original bug: -workers 1 on a multi-core host
		{workers: 8, gomaxprocs: 1, want: true}, // single-core host: workers contend for one P
		{workers: 1, gomaxprocs: 1, want: true},
		{workers: 2, gomaxprocs: 2, want: false},
		{workers: 8, gomaxprocs: 8, want: false},
	}
	for _, c := range cases {
		if got := degenerateRun(c.workers, c.gomaxprocs); got != c.want {
			t.Errorf("degenerateRun(workers=%d, gomaxprocs=%d) = %v, want %v", c.workers, c.gomaxprocs, got, c.want)
		}
	}
}

func TestWorkerSweep(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{max: 0, want: []int{1}},
		{max: 1, want: []int{1}},
		{max: 2, want: []int{2}},
		{max: 3, want: []int{2, 3}},
		{max: 6, want: []int{2, 4, 6}},
		{max: 8, want: []int{2, 4, 8}},
		{max: 9, want: []int{2, 4, 8, 9}},
	}
	for _, c := range cases {
		got := workerSweep(c.max)
		if len(got) != len(c.want) {
			t.Errorf("workerSweep(%d) = %v, want %v", c.max, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("workerSweep(%d) = %v, want %v", c.max, got, c.want)
				break
			}
		}
	}
}

// TestWorkloadsBenchWritesKeys runs the rec/fault matrices at CI scale,
// checks the personalization gate passes, and verifies both entries land in
// the keyed measurement file with the schema expcheck validates.
func TestWorkloadsBenchWritesKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("eight training runs are slow")
	}
	out := filepath.Join(t.TempDir(), "exp.json")
	if err := silenceStdout(t, func() error {
		return run([]string{"-workloads-bench", "-out", out})
	}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]struct {
		Workload   string `json:"workload"`
		Trajectory []struct {
			KiB int     `json:"kib"`
			Acc float64 `json:"acc"`
		} `json:"trajectory"`
		Arms []struct {
			Arm        string   `json:"arm"`
			GlobalAcc  *float64 `json:"global_acc"`
			AdaptedAcc *float64 `json:"adapted_acc"`
		} `json:"arms"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"ext_rec", "ext_fault"} {
		entry, ok := doc[key]
		if !ok {
			t.Fatalf("%s missing from %s", key, out)
		}
		if len(entry.Arms) != 4 {
			t.Errorf("%s: %d arms, want 4", key, len(entry.Arms))
		}
		for _, a := range entry.Arms {
			if a.Arm == "" || a.GlobalAcc == nil || a.AdaptedAcc == nil {
				t.Errorf("%s: incomplete arm row %+v", key, a)
			}
		}
		if len(entry.Trajectory) == 0 {
			t.Errorf("%s: missing accuracy/traffic trajectory", key)
		}
	}
}
