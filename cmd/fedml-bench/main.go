// Command fedml-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	fedml-bench -list                 # show available experiments
//	fedml-bench -exp fig2a            # run one experiment (CI scale)
//	fedml-bench -exp all -paper       # run everything at paper scale
//
// Each experiment prints the same rows/series the paper reports; the
// per-experiment index lives in DESIGN.md §4.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/edgeai/fedml/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fedml-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fedml-bench", flag.ContinueOnError)
	var (
		exp   = fs.String("exp", "all", "experiment id (see -list) or \"all\"")
		paper = fs.Bool("paper", false, "run at the paper's scale instead of the fast CI scale")
		list  = fs.Bool("list", false, "list available experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Description)
		}
		return nil
	}

	scale := experiments.ScaleCI
	if *paper {
		scale = experiments.ScalePaper
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}

	for _, id := range ids {
		start := time.Now()
		out, err := experiments.Run(id, scale)
		if err != nil {
			return err
		}
		fmt.Printf("=== %s (scale=%s, %.1fs) ===\n%s\n", id, scale, time.Since(start).Seconds(), out)
	}
	return nil
}
