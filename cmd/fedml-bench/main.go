// Command fedml-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	fedml-bench -list                 # show available experiments
//	fedml-bench -exp fig2a            # run one experiment (CI scale)
//	fedml-bench -exp all -paper       # run everything at paper scale
//	fedml-bench -par-bench -workers 4 # measure parallel speedup on fig2a
//
// Each experiment prints the same rows/series the paper reports; the
// per-experiment index lives in DESIGN.md §4.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/edgeai/fedml/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fedml-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fedml-bench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment id (see -list) or \"all\"")
		paper    = fs.Bool("paper", false, "run at the paper's scale instead of the fast CI scale")
		list     = fs.Bool("list", false, "list available experiments and exit")
		workers  = fs.Int("workers", 0, "worker count for parallel sections (0 = all cores, 1 = serial)")
		parBench = fs.Bool("par-bench", false, "benchmark the fig2a grid at workers=1 vs -workers, verify identical output, and report the speedup")
		out      = fs.String("out", "", "with -par-bench: write the measurements as JSON to this file")
		codecs   = fs.String("codec", "", "with -exp ext-codec: comma-separated update codecs to compare, first is the baseline (default raw,f16,q8,topk)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Description)
		}
		return nil
	}

	scale := experiments.ScaleCI
	if *paper {
		scale = experiments.ScalePaper
	}

	if *parBench {
		return runParBench(scale, *workers, *out)
	}

	if *codecs != "" {
		if *exp != "ext-codec" {
			return fmt.Errorf("-codec only applies to -exp ext-codec (got -exp %s)", *exp)
		}
		cfg := experiments.DefaultExtCodecConfig(scale)
		cfg.Workers = *workers
		cfg.Codecs = strings.Split(*codecs, ",")
		start := time.Now()
		res, err := experiments.RunExtCodec(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("=== ext-codec (scale=%s, %.1fs) ===\n%s\n", scale, time.Since(start).Seconds(), res.Render())
		return nil
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}

	for _, id := range ids {
		start := time.Now()
		out, err := experiments.Run(id, scale, *workers)
		if err != nil {
			return err
		}
		fmt.Printf("=== %s (scale=%s, %.1fs) ===\n%s\n", id, scale, time.Since(start).Seconds(), out)
	}
	return nil
}

// parBenchReport is the JSON shape written by -par-bench.
type parBenchReport struct {
	Experiment      string  `json:"experiment"`
	Scale           string  `json:"scale"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	Workers         int     `json:"workers"`
	SerialNs        int64   `json:"serial_ns"`
	ParallelNs      int64   `json:"parallel_ns"`
	Speedup         float64 `json:"speedup"`
	OutputIdentical bool    `json:"output_identical"`
}

// runParBench times the fig2a grid serially and at the requested worker
// count, checks the rendered outputs are byte-identical (the par contract),
// and prints — and optionally writes — the measurements.
func runParBench(scale experiments.Scale, workers int, outPath string) error {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	serialOut, err := experiments.Run("fig2a", scale, 1)
	if err != nil {
		return fmt.Errorf("par-bench serial run: %w", err)
	}
	serialNs := time.Since(start).Nanoseconds()

	start = time.Now()
	parOut, err := experiments.Run("fig2a", scale, workers)
	if err != nil {
		return fmt.Errorf("par-bench parallel run: %w", err)
	}
	parNs := time.Since(start).Nanoseconds()

	rep := parBenchReport{
		Experiment:      "fig2a",
		Scale:           scale.String(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Workers:         workers,
		SerialNs:        serialNs,
		ParallelNs:      parNs,
		Speedup:         float64(serialNs) / float64(parNs),
		OutputIdentical: serialOut == parOut,
	}
	fmt.Printf("par-bench fig2a (scale=%s): serial %.2fs, workers=%d %.2fs, speedup %.2fx, identical=%v\n",
		rep.Scale, float64(serialNs)/1e9, workers, float64(parNs)/1e9, rep.Speedup, rep.OutputIdentical)
	if !rep.OutputIdentical {
		return fmt.Errorf("par-bench: workers=1 and workers=%d outputs differ — determinism contract violated", workers)
	}
	if outPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fmt.Errorf("par-bench marshal: %w", err)
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("par-bench write: %w", err)
		}
	}
	return nil
}
