// Command fedml-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	fedml-bench -list                 # show available experiments
//	fedml-bench -exp fig2a            # run one experiment (CI scale)
//	fedml-bench -exp all -paper       # run everything at paper scale
//	fedml-bench -par-bench -workers 4 # measure parallel speedup on fig2a
//	fedml-bench -scale-bench -paper   # measure fleet-scale sharded throughput
//	fedml-bench -async-bench          # measure async vs sync rounds/sec under latency skew
//	fedml-bench -energy-bench         # measure accuracy-per-joule of partial vs full sync
//	fedml-bench -workloads-bench      # run the rec/fault personalization matrices and check the gap
//
// Each experiment prints the same rows/series the paper reports; the
// per-experiment index lives in DESIGN.md §4.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/edgeai/fedml/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fedml-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fedml-bench", flag.ContinueOnError)
	var (
		exp         = fs.String("exp", "all", "experiment id (see -list) or \"all\"")
		paper       = fs.Bool("paper", false, "run at the paper's scale instead of the fast CI scale")
		list        = fs.Bool("list", false, "list available experiments and exit")
		workers     = fs.Int("workers", 0, "worker count for parallel sections (0 = all cores, 1 = serial)")
		parBench    = fs.Bool("par-bench", false, "benchmark the fig2a grid at workers=1 vs -workers, verify identical output, and report the speedup")
		scaleBench  = fs.Bool("scale-bench", false, "benchmark fleet-scale two-tier aggregation (ext-scale) and report rounds/sec")
		asyncBench  = fs.Bool("async-bench", false, "benchmark buffered-async vs sync round throughput under latency skew (ext-async)")
		energyBench = fs.Bool("energy-bench", false, "measure accuracy-per-joule of head-only partial sync vs full sync (ext-energy) and check the savings floor")
		workBench   = fs.Bool("workloads-bench", false, "run the ext-rec and ext-fault personalization matrices and check FedML's adapted accuracy beats the global baselines")
		out         = fs.String("out", "", "with -par-bench, -scale-bench, -async-bench, or -energy-bench: merge the measurement into this keyed JSON file")
		codecs      = fs.String("codec", "", "with -exp ext-codec: comma-separated update codecs to compare, first is the baseline (default raw,f16,q8,topk)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Description)
		}
		return nil
	}

	scale := experiments.ScaleCI
	if *paper {
		scale = experiments.ScalePaper
	}

	if *parBench {
		return runParBench(scale, *workers, *out)
	}
	if *scaleBench {
		return runScaleBench(scale, *out)
	}
	if *asyncBench {
		return runAsyncBench(scale, *out)
	}
	if *energyBench {
		return runEnergyBench(scale, *workers, *out)
	}
	if *workBench {
		return runWorkloadsBench(scale, *workers, *out)
	}

	if *codecs != "" {
		if *exp != "ext-codec" {
			return fmt.Errorf("-codec only applies to -exp ext-codec (got -exp %s)", *exp)
		}
		cfg := experiments.DefaultExtCodecConfig(scale)
		cfg.Workers = *workers
		cfg.Codecs = strings.Split(*codecs, ",")
		start := time.Now()
		res, err := experiments.RunExtCodec(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("=== ext-codec (scale=%s, %.1fs) ===\n%s\n", scale, time.Since(start).Seconds(), res.Render())
		return nil
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}

	for _, id := range ids {
		start := time.Now()
		out, err := experiments.Run(id, scale, *workers)
		if err != nil {
			return err
		}
		fmt.Printf("=== %s (scale=%s, %.1fs) ===\n%s\n", id, scale, time.Since(start).Seconds(), out)
	}
	return nil
}

// parBenchPoint is one leg of the speedup curve: the fig2a grid timed at a
// worker count, relative to the workers=1 leg.
type parBenchPoint struct {
	Workers    int     `json:"workers"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
}

// parBenchReport is the JSON shape stored under "par_bench".
type parBenchReport struct {
	Experiment string `json:"experiment"`
	Scale      string `json:"scale"`
	// GOMAXPROCS and Workers record the actual parallelism of the run, so a
	// snapshot taken on a small machine is honest about what it compared.
	GOMAXPROCS int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
	// Degenerate marks a run whose effective parallelism never exceeded 1 —
	// a single-core host, or an explicit -workers 1 — so Speedup measures
	// worker-pool overhead, not scaling.
	Degenerate      bool `json:"degenerate,omitempty"`
	OutputIdentical bool `json:"output_identical"`
	// Curve is the multi-worker sweep (doubling counts up to Workers);
	// ParallelNs/Speedup above mirror its last (largest) leg.
	Curve []parBenchPoint `json:"curve"`
}

// degenerateRun reports whether a serial-vs-parallel comparison ran at
// effective parallelism ≤ 1, either because the host has a single core or
// because the parallel leg was itself asked for one worker. It must depend
// on the parallelism the run actually used: deriving it from GOMAXPROCS
// alone recorded a `-workers 1` run on a multi-core box as a non-degenerate
// ~1.0× "speedup".
func degenerateRun(workers, gomaxprocs int) bool {
	return workers <= 1 || gomaxprocs <= 1
}

// workerSweep returns the worker counts of the speedup curve: doubling from
// 2 up to and including max, or just {1} when max ≤ 1.
func workerSweep(max int) []int {
	if max <= 1 {
		return []int{1}
	}
	var counts []int
	for w := 2; w < max; w *= 2 {
		counts = append(counts, w)
	}
	return append(counts, max)
}

// scaleBenchReport is the JSON shape stored under "ext_scale".
type scaleBenchReport struct {
	Scale            string  `json:"scale"`
	Nodes            int     `json:"nodes"`
	Shards           int     `json:"shards"`
	Dim              int     `json:"dim"`
	Rounds           int     `json:"rounds"`
	ElapsedNs        int64   `json:"elapsed_ns"`
	RoundsPerSec     float64 `json:"rounds_per_sec"`
	NodeRoundsPerSec float64 `json:"node_rounds_per_sec"`
	StatsParity      bool    `json:"stats_parity"`
	MaxClosedFormErr float64 `json:"max_closed_form_err"`
}

// benchKeys are the families BENCH_experiments.json may hold; anything else
// found in the file (e.g. the legacy flat par-bench shape) is dropped on the
// next write.
var benchKeys = []string{"par_bench", "ext_scale", "async_skew", "ext_energy", "ext_rec", "ext_fault"}

// mergeBenchEntry read-modify-writes one family entry into the keyed
// measurement file, preserving the other families' entries.
func mergeBenchEntry(path, key string, entry any) error {
	doc := map[string]json.RawMessage{}
	if blob, err := os.ReadFile(path); err == nil {
		var prev map[string]json.RawMessage
		if json.Unmarshal(blob, &prev) == nil {
			for _, k := range benchKeys {
				if v, ok := prev[k]; ok {
					doc[k] = v
				}
			}
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("bench merge read %s: %w", path, err)
	}
	blob, err := json.Marshal(entry)
	if err != nil {
		return fmt.Errorf("bench marshal %s: %w", key, err)
	}
	doc[key] = blob
	// MarshalIndent re-indents the embedded raw entries consistently.
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("bench marshal %s: %w", path, err)
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// runParBench times the fig2a grid serially and then across a doubling
// sweep of worker counts up to the requested one, checks every rendered
// output is byte-identical to the serial one (the par contract), and prints
// — and optionally writes — the speedup curve.
func runParBench(scale experiments.Scale, workers int, outPath string) error {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	serialOut, err := experiments.Run("fig2a", scale, 1)
	if err != nil {
		return fmt.Errorf("par-bench serial run: %w", err)
	}
	serialNs := time.Since(start).Nanoseconds()

	curve := make([]parBenchPoint, 0, 8)
	for _, w := range workerSweep(workers) {
		start = time.Now()
		parOut, err := experiments.Run("fig2a", scale, w)
		if err != nil {
			return fmt.Errorf("par-bench workers=%d run: %w", w, err)
		}
		ns := time.Since(start).Nanoseconds()
		if parOut != serialOut {
			return fmt.Errorf("par-bench: workers=1 and workers=%d outputs differ — determinism contract violated", w)
		}
		curve = append(curve, parBenchPoint{Workers: w, ParallelNs: ns, Speedup: float64(serialNs) / float64(ns)})
	}

	last := curve[len(curve)-1]
	rep := parBenchReport{
		Experiment:      "fig2a",
		Scale:           scale.String(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Workers:         workers,
		SerialNs:        serialNs,
		ParallelNs:      last.ParallelNs,
		Speedup:         last.Speedup,
		Degenerate:      degenerateRun(workers, runtime.GOMAXPROCS(0)),
		OutputIdentical: true,
	}
	rep.Curve = curve
	fmt.Printf("par-bench fig2a (scale=%s): serial %.2fs\n", rep.Scale, float64(serialNs)/1e9)
	for _, p := range curve {
		fmt.Printf("  workers=%-3d %.2fs, speedup %.2fx\n", p.Workers, float64(p.ParallelNs)/1e9, p.Speedup)
	}
	if rep.Degenerate {
		fmt.Println("par-bench: effective parallelism never exceeded 1 — the speedup measures worker-pool overhead, not scaling")
	}
	if outPath != "" {
		if err := mergeBenchEntry(outPath, "par_bench", rep); err != nil {
			return err
		}
	}
	return nil
}

// asyncBenchReport is the JSON shape stored under "async_skew".
type asyncBenchReport struct {
	Scale        string  `json:"scale"`
	Nodes        int     `json:"nodes"`
	SyncRounds   int     `json:"sync_rounds"`
	AsyncRounds  int     `json:"async_rounds"`
	SyncNs       int64   `json:"sync_ns"`
	AsyncNs      int64   `json:"async_ns"`
	SyncRate     float64 `json:"sync_rounds_per_sec"`
	AsyncRate    float64 `json:"async_rounds_per_sec"`
	Speedup      float64 `json:"speedup"`
	RelGap       float64 `json:"objective_rel_gap"`
	StaleApplied int     `json:"stale_applied"`
	StaleDropped int     `json:"stale_dropped"`
}

// runAsyncBench measures the ext-async experiment — buffered-async vs the
// sync gather barrier under a 10x latency straggler — and merges the round
// throughputs into the measurement file.
func runAsyncBench(scale experiments.Scale, outPath string) error {
	res, err := experiments.RunExtAsync(experiments.DefaultExtAsyncConfig(scale))
	if err != nil {
		return fmt.Errorf("async-bench: %w", err)
	}
	fmt.Print(res.Render())
	if res.Speedup < 2 {
		return fmt.Errorf("async-bench: speedup %.2fx below the 2x floor", res.Speedup)
	}
	if res.RelGap > 0.05 {
		return fmt.Errorf("async-bench: objective gap %.1f%% above the 5%% bound", 100*res.RelGap)
	}
	if outPath != "" {
		rep := asyncBenchReport{
			Scale:        scale.String(),
			Nodes:        res.Nodes,
			SyncRounds:   res.SyncRounds,
			AsyncRounds:  res.AsyncRounds,
			SyncNs:       res.SyncElapsed.Nanoseconds(),
			AsyncNs:      res.AsyncElapsed.Nanoseconds(),
			SyncRate:     res.SyncRate,
			AsyncRate:    res.AsyncRate,
			Speedup:      res.Speedup,
			RelGap:       res.RelGap,
			StaleApplied: res.StaleApplied,
			StaleDropped: res.StaleDropped,
		}
		if err := mergeBenchEntry(outPath, "async_skew", rep); err != nil {
			return err
		}
	}
	return nil
}

// energyBenchArm is one sync policy's bill in the "ext_energy" entry.
type energyBenchArm struct {
	Arm            string  `json:"arm"`
	TotalJoules    float64 `json:"total_joules"`
	TotalKiB       float64 `json:"total_kib"`
	FinalAcc       float64 `json:"final_acc"`
	JoulesRatio    float64 `json:"joules_ratio_vs_full"`
	BudgetFiltered int     `json:"budget_filtered"`
}

// energyBenchReport is the JSON shape stored under "ext_energy".
type energyBenchReport struct {
	Scale   string           `json:"scale"`
	Profile string           `json:"profile"`
	Arms    []energyBenchArm `json:"arms"`
}

// runEnergyBench runs the ext-energy experiment and enforces its headline
// claim as a gate: head-only sync within 2 accuracy points of full sync at
// >= 3x fewer modeled joules on the lora-like profile.
func runEnergyBench(scale experiments.Scale, workers int, outPath string) error {
	cfg := experiments.DefaultExtEnergyConfig(scale)
	cfg.Workers = workers
	res, err := experiments.RunExtEnergy(cfg)
	if err != nil {
		return fmt.Errorf("energy-bench: %w", err)
	}
	fmt.Print(res.Render())
	full, head := 0, 1
	if gap := res.FinalAcc[full] - res.FinalAcc[head]; gap > 0.02 {
		return fmt.Errorf("energy-bench: head-sync accuracy %.4f more than 2 points below full-sync %.4f",
			res.FinalAcc[head], res.FinalAcc[full])
	}
	if res.TotalJoules[head] > res.TotalJoules[full]/3 {
		return fmt.Errorf("energy-bench: head-sync spent %.0f J, above 1/3 of full-sync %.0f J",
			res.TotalJoules[head], res.TotalJoules[full])
	}
	if outPath != "" {
		rep := energyBenchReport{Scale: scale.String(), Profile: res.Profile}
		for i, name := range res.Arms {
			rep.Arms = append(rep.Arms, energyBenchArm{
				Arm:            name,
				TotalJoules:    res.TotalJoules[i],
				TotalKiB:       res.TotalKiB[i],
				FinalAcc:       res.FinalAcc[i],
				JoulesRatio:    res.TotalJoules[full] / res.TotalJoules[i],
				BudgetFiltered: res.BudgetFiltered[i],
			})
		}
		if err := mergeBenchEntry(outPath, "ext_energy", rep); err != nil {
			return err
		}
	}
	return nil
}

// workloadBenchArm is one algorithm's row in a workload's personalization
// matrix entry.
type workloadBenchArm struct {
	Arm        string  `json:"arm"`
	GlobalAcc  float64 `json:"global_acc"`
	AdaptedAcc float64 `json:"adapted_acc"`
	Gap        float64 `json:"gap"`
}

// workloadBenchPoint is one point of the fedml arm's accuracy/traffic
// trajectory.
type workloadBenchPoint struct {
	KiB int     `json:"kib"`
	Acc float64 `json:"acc"`
}

// workloadBenchReport is the JSON shape stored under "ext_rec"/"ext_fault".
type workloadBenchReport struct {
	Scale      string               `json:"scale"`
	Workload   string               `json:"workload"`
	AdaptSteps int                  `json:"adapt_steps"`
	TotalKiB   float64              `json:"total_kib"`
	Trajectory []workloadBenchPoint `json:"trajectory"`
	Arms       []workloadBenchArm   `json:"arms"`
}

// runWorkloadsBench runs the ext-rec and ext-fault comparison matrices and
// enforces the personalization claim as a gate on both: FedML's adapted
// accuracy must be at least the global accuracy of FedAvg and FedProx.
func runWorkloadsBench(scale experiments.Scale, workers int, outPath string) error {
	for _, workload := range []string{"rec", "fault"} {
		cfg := experiments.DefaultExtWorkloadConfig(workload, scale)
		cfg.Workers = workers
		res, err := experiments.RunExtWorkload(cfg)
		if err != nil {
			return fmt.Errorf("workloads-bench %s: %w", workload, err)
		}
		fmt.Print(res.Render())
		pers := map[string]float64{}
		for i, name := range res.Arms {
			pers[name+"/global"] = res.Pers[i].Global
			pers[name+"/adapted"] = res.Pers[i].Adapted
		}
		for _, baseline := range []string{"fedavg", "fedprox"} {
			if pers["fedml/adapted"] < pers[baseline+"/global"] {
				return fmt.Errorf("workloads-bench %s: FedML adapted %.4f below %s global %.4f",
					workload, pers["fedml/adapted"], baseline, pers[baseline+"/global"])
			}
		}
		if outPath != "" {
			rep := workloadBenchReport{
				Scale:      scale.String(),
				Workload:   workload,
				AdaptSteps: cfg.AdaptSteps,
				TotalKiB:   res.TotalKiB,
			}
			if res.AccVsKiB != nil {
				for _, p := range res.AccVsKiB.Points {
					rep.Trajectory = append(rep.Trajectory, workloadBenchPoint{KiB: p.Iter, Acc: p.Value})
				}
			}
			for i, name := range res.Arms {
				rep.Arms = append(rep.Arms, workloadBenchArm{
					Arm:        name,
					GlobalAcc:  res.Pers[i].Global,
					AdaptedAcc: res.Pers[i].Adapted,
					Gap:        res.Pers[i].Gap(),
				})
			}
			if err := mergeBenchEntry(outPath, "ext_"+workload, rep); err != nil {
				return err
			}
		}
	}
	return nil
}

// runScaleBench measures the ext-scale experiment — the two-tier topology at
// fleet size — and merges rounds/sec into the measurement file.
func runScaleBench(scale experiments.Scale, outPath string) error {
	cfg := experiments.DefaultExtScaleConfig(scale)
	res, err := experiments.RunExtScale(cfg)
	if err != nil {
		return fmt.Errorf("scale-bench: %w", err)
	}
	fmt.Print(res.Render())
	if !res.StatsParity {
		return fmt.Errorf("scale-bench: root stats diverged from shard sum: %+v", res.Root)
	}
	if outPath != "" {
		rep := scaleBenchReport{
			Scale:            scale.String(),
			Nodes:            res.Nodes,
			Shards:           res.Shards,
			Dim:              res.Dim,
			Rounds:           res.Rounds,
			ElapsedNs:        res.Elapsed.Nanoseconds(),
			RoundsPerSec:     res.RoundsPerSec,
			NodeRoundsPerSec: res.NodeRoundsPerSec,
			StatsParity:      res.StatsParity,
			MaxClosedFormErr: res.MaxClosedFormErr,
		}
		if err := mergeBenchEntry(outPath, "ext_scale", rep); err != nil {
			return err
		}
	}
	return nil
}
