package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/edgeai/fedml
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig2aNodeSimilarity 	       1	1121150641 ns/op	672436408 B/op	  414879 allocs/op
BenchmarkMetaStep-8          	   25982	     49057 ns/op	   32992 B/op	      18 allocs/op
BenchmarkGradInto/softmax-8  	  209064	      6813 ns/op	       0 B/op	       0 allocs/op
BenchmarkAblationLocalSteps/T0=5-8 	  100	 12345 ns/op	        42.0 msgs/op	 100 B/op	 7 allocs/op
PASS
ok  	github.com/edgeai/fedml	5.799s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Result{
		"BenchmarkFig2aNodeSimilarity":     {Iterations: 1, NsPerOp: 1121150641, BytesPerOp: 672436408, AllocsPerOp: 414879},
		"BenchmarkMetaStep":                {Iterations: 25982, NsPerOp: 49057, BytesPerOp: 32992, AllocsPerOp: 18},
		"BenchmarkGradInto/softmax":        {Iterations: 209064, NsPerOp: 6813},
		"BenchmarkAblationLocalSteps/T0=5": {Iterations: 100, NsPerOp: 12345, BytesPerOp: 100, AllocsPerOp: 7},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, w := range want {
		if g, ok := got[name]; !ok || g != w {
			t.Errorf("%s = %+v, want %+v", name, got[name], w)
		}
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	got, err := parse(strings.NewReader("hello\nBenchmarkX notanumber 5 ns/op\n--- FAIL: TestY\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("parsed %v from garbage", got)
	}
}

func TestRunWritesJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(strings.NewReader(sample), out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]Result
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if decoded["BenchmarkMetaStep"].AllocsPerOp != 18 {
		t.Errorf("round-trip lost data: %+v", decoded["BenchmarkMetaStep"])
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(strings.NewReader("no benchmarks here\n"), filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Error("empty input accepted")
	}
}
