package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/edgeai/fedml
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig2aNodeSimilarity 	       1	1121150641 ns/op	672436408 B/op	  414879 allocs/op
BenchmarkMetaStep-8          	   25982	     49057 ns/op	   32992 B/op	      18 allocs/op
BenchmarkGradInto/softmax-8  	  209064	      6813 ns/op	       0 B/op	       0 allocs/op
BenchmarkAblationLocalSteps/T0=5-8 	  100	 12345 ns/op	        42.0 msgs/op	 100 B/op	 7 allocs/op
PASS
ok  	github.com/edgeai/fedml	5.799s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Result{
		"BenchmarkFig2aNodeSimilarity":     {Iterations: 1, NsPerOp: 1121150641, BytesPerOp: 672436408, AllocsPerOp: 414879},
		"BenchmarkMetaStep":                {Iterations: 25982, NsPerOp: 49057, BytesPerOp: 32992, AllocsPerOp: 18},
		"BenchmarkGradInto/softmax":        {Iterations: 209064, NsPerOp: 6813},
		"BenchmarkAblationLocalSteps/T0=5": {Iterations: 100, NsPerOp: 12345, BytesPerOp: 100, AllocsPerOp: 7},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, w := range want {
		if g, ok := got[name]; !ok || g != w {
			t.Errorf("%s = %+v, want %+v", name, got[name], w)
		}
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	got, err := parse(strings.NewReader("hello\nBenchmarkX notanumber 5 ns/op\n--- FAIL: TestY\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("parsed %v from garbage", got)
	}
}

func TestRunWritesJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(strings.NewReader(sample), out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]Result
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if decoded["BenchmarkMetaStep"].AllocsPerOp != 18 {
		t.Errorf("round-trip lost data: %+v", decoded["BenchmarkMetaStep"])
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(strings.NewReader("no benchmarks here\n"), filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	base := map[string]Result{
		"BenchmarkA": {AllocsPerOp: 100, BytesPerOp: 1000, NsPerOp: 50},
		"BenchmarkZ": {AllocsPerOp: 0, BytesPerOp: 0, NsPerOp: 10},
	}
	cur := map[string]Result{
		"BenchmarkA": {AllocsPerOp: 109, BytesPerOp: 1099, NsPerOp: 500}, // +9%, ns/op ignored
		"BenchmarkZ": {AllocsPerOp: 0, BytesPerOp: 0, NsPerOp: 9},
		"BenchmarkN": {AllocsPerOp: 7}, // new, not gated
	}
	var out strings.Builder
	if err := compare(&out, base, cur, 0.10); err != nil {
		t.Fatalf("within-threshold run failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "new  BenchmarkN") {
		t.Errorf("new benchmark not reported:\n%s", out.String())
	}
}

func TestCompareFailsOnAllocRegression(t *testing.T) {
	base := map[string]Result{"BenchmarkA": {AllocsPerOp: 100, BytesPerOp: 1000}}
	cur := map[string]Result{"BenchmarkA": {AllocsPerOp: 120, BytesPerOp: 1000}}
	var out strings.Builder
	err := compare(&out, base, cur, 0.10)
	if err == nil {
		t.Fatal("20% allocs/op growth passed the 10% gate")
	}
	if !strings.Contains(err.Error(), "allocs/op") {
		t.Errorf("failure does not name the regressing unit: %v", err)
	}
}

func TestCompareFailsOnByteRegression(t *testing.T) {
	base := map[string]Result{"BenchmarkA": {AllocsPerOp: 10, BytesPerOp: 1000}}
	cur := map[string]Result{"BenchmarkA": {AllocsPerOp: 10, BytesPerOp: 1200}}
	if err := compare(&strings.Builder{}, base, cur, 0.10); err == nil {
		t.Fatal("20% B/op growth passed the 10% gate")
	}
}

func TestCompareFailsOnZeroBaselineGrowth(t *testing.T) {
	// The zero-allocation kernels guard exact zeros: any allocation is a
	// regression no matter the threshold.
	base := map[string]Result{"BenchmarkGrad": {AllocsPerOp: 0, BytesPerOp: 0}}
	cur := map[string]Result{"BenchmarkGrad": {AllocsPerOp: 1, BytesPerOp: 16}}
	if err := compare(&strings.Builder{}, base, cur, 0.10); err == nil {
		t.Fatal("allocation on a zero-alloc baseline passed the gate")
	}
}

func TestCompareFailsOnMissingBenchmark(t *testing.T) {
	base := map[string]Result{"BenchmarkA": {AllocsPerOp: 1}, "BenchmarkGone": {AllocsPerOp: 1}}
	cur := map[string]Result{"BenchmarkA": {AllocsPerOp: 1}}
	err := compare(&strings.Builder{}, base, cur, 0.10)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkGone") {
		t.Fatalf("vanished baseline benchmark not flagged: %v", err)
	}
}

func TestCompareRoundTripFiles(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	if err := run(strings.NewReader(sample), basePath); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadResults(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := compare(&strings.Builder{}, loaded, loaded, 0.10); err != nil {
		t.Errorf("self-comparison failed: %v", err)
	}
}

const expSample = `{
  "ext_rec": {
    "scale": "ci",
    "workload": "rec",
    "trajectory": [{"kib": 10, "acc": 0.5}],
    "arms": [
      {"arm": "fedml", "global_acc": 0.51, "adapted_acc": 0.74, "gap": 0.23},
      {"arm": "fedavg", "global_acc": 0.55, "adapted_acc": 0.60, "gap": 0.05}
    ]
  },
  "ext_fault": {
    "scale": "ci",
    "workload": "fault",
    "arms": [
      {"arm": "fedml", "global_acc": 0.4, "adapted_acc": 0.8, "gap": 0.4}
    ]
  },
  "par_bench": {"speedup": 3.1}
}`

func TestExpcheckAcceptsValidEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.json")
	if err := os.WriteFile(path, []byte(expSample), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := expcheck(&out, path, []string{"ext_rec", "ext_fault"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 experiment entries") {
		t.Errorf("output missing summary: %s", out.String())
	}
}

func TestExpcheckFailures(t *testing.T) {
	dir := t.TempDir()
	writeDoc := func(name, doc string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	var out strings.Builder
	cases := map[string]struct {
		doc  string
		keys []string
	}{
		"missing key":       {expSample, []string{"ext_rec", "ext_images"}},
		"no arms":           {`{"ext_rec": {"scale": "ci"}}`, []string{"ext_rec"}},
		"empty arms":        {`{"ext_rec": {"arms": []}}`, []string{"ext_rec"}},
		"nameless arm":      {`{"ext_rec": {"arms": [{"global_acc": 1, "adapted_acc": 1}]}}`, []string{"ext_rec"}},
		"missing global":    {`{"ext_rec": {"arms": [{"arm": "fedml", "adapted_acc": 1}]}}`, []string{"ext_rec"}},
		"missing adapted":   {`{"ext_rec": {"arms": [{"arm": "fedml", "global_acc": 1}]}}`, []string{"ext_rec"}},
		"entry wrong shape": {`{"ext_rec": {"arms": "nope"}}`, []string{"ext_rec"}},
		"not json":          {`]`, []string{"ext_rec"}},
	}
	for name, tc := range cases {
		path := writeDoc(strings.ReplaceAll(name, " ", "_")+".json", tc.doc)
		if err := expcheck(&out, path, tc.keys); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if err := expcheck(&out, filepath.Join(dir, "missing.json"), []string{"x"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunExpcheckArgs(t *testing.T) {
	if err := runExpcheck(nil); err == nil {
		t.Error("no args accepted")
	}
	if err := runExpcheck([]string{"only-file.json"}); err == nil {
		t.Error("file without keys accepted")
	}
}
