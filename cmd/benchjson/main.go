// Command benchjson converts `go test -bench` output read from stdin into a
// machine-readable JSON file: a map from benchmark name to its measured
// ns/op, B/op, allocs/op and iteration count. It is the back end of
// `make bench-json`, which records the repository's performance trajectory
// (BENCH_fedml.json) so regressions show up as diffs.
//
// Lines that are not benchmark results (headers, PASS/ok trailers, custom
// metrics it does not know) are ignored; unknown units on a benchmark line
// are skipped without error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is the parsed measurement of one benchmark.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchLine matches "BenchmarkName[-P] <iters> <value> <unit> ...". The -P
// suffix (GOMAXPROCS) is stripped from the name so results are comparable
// across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parse reads benchmark output and returns the results keyed by name. A
// benchmark that appears multiple times keeps its last occurrence.
func parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		fields := strings.Fields(m[3])
		// Fields come in value/unit pairs after the iteration count.
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		out[m[1]] = res
	}
	return out, sc.Err()
}

// write renders the results as deterministic (sorted-key, indented) JSON.
func write(w io.Writer, results map[string]Result) error {
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	// Marshal via an ordered rendering: encoding/json sorts map keys, so a
	// plain Marshal of the map is already deterministic.
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	ordered := make(map[string]Result, len(results))
	for _, name := range names {
		ordered[name] = results[name]
	}
	return enc.Encode(ordered)
}

func run(in io.Reader, outPath string) error {
	results, err := parse(in)
	if err != nil {
		return fmt.Errorf("benchjson: reading input: %w", err)
	}
	if len(results) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines found on stdin")
	}
	f, err := os.Create(outPath)
	if err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	if err := write(f, results); err != nil {
		f.Close()
		return fmt.Errorf("benchjson: writing %s: %w", outPath, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(results), outPath)
	return nil
}

func main() {
	out := flag.String("out", "BENCH_fedml.json", "output JSON path")
	flag.Parse()
	if err := run(os.Stdin, *out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
