// Command benchjson converts `go test -bench` output read from stdin into a
// machine-readable JSON file: a map from benchmark name to its measured
// ns/op, B/op, allocs/op and iteration count. It is the back end of
// `make bench-json`, which records the repository's performance trajectory
// (BENCH_fedml.json) so regressions show up as diffs.
//
// Lines that are not benchmark results (headers, PASS/ok trailers, custom
// metrics it does not know) are ignored; unknown units on a benchmark line
// are skipped without error.
//
// The compare subcommand is the CI regression gate:
//
//	benchjson compare [-threshold 0.10] baseline.json current.json
//
// It exits non-zero when any benchmark's allocs/op or B/op grew by more than
// the threshold against the committed baseline, or when a baselined
// benchmark disappeared. ns/op is reported but never gated — wall time on
// shared CI runners is too noisy to block merges on.
//
// The expcheck subcommand validates the keyed experiment-measurement file:
//
//	benchjson expcheck BENCH_experiments.json ext_rec ext_fault
//
// It exits non-zero when a named key is missing or its entry does not match
// the personalization-matrix schema (an `arms` array whose rows carry arm /
// global_acc / adapted_acc). Values are never gated — the accuracy floors
// live in `fedml-bench -workloads-bench`; this check only keeps the recorded
// snapshot structurally honest.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is the parsed measurement of one benchmark.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchLine matches "BenchmarkName[-P] <iters> <value> <unit> ...". The -P
// suffix (GOMAXPROCS) is stripped from the name so results are comparable
// across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parse reads benchmark output and returns the results keyed by name. A
// benchmark that appears multiple times keeps its last occurrence.
func parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		fields := strings.Fields(m[3])
		// Fields come in value/unit pairs after the iteration count.
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		out[m[1]] = res
	}
	return out, sc.Err()
}

// write renders the results as deterministic (sorted-key, indented) JSON.
func write(w io.Writer, results map[string]Result) error {
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	// Marshal via an ordered rendering: encoding/json sorts map keys, so a
	// plain Marshal of the map is already deterministic.
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	ordered := make(map[string]Result, len(results))
	for _, name := range names {
		ordered[name] = results[name]
	}
	return enc.Encode(ordered)
}

func run(in io.Reader, outPath string) error {
	results, err := parse(in)
	if err != nil {
		return fmt.Errorf("benchjson: reading input: %w", err)
	}
	if len(results) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines found on stdin")
	}
	f, err := os.Create(outPath)
	if err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	if err := write(f, results); err != nil {
		f.Close()
		return fmt.Errorf("benchjson: writing %s: %w", outPath, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(results), outPath)
	return nil
}

// loadResults reads a benchjson-written JSON file back into memory.
func loadResults(path string) (map[string]Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	var out map[string]Result
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("benchjson: parsing %s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchjson: %s holds no benchmarks", path)
	}
	return out, nil
}

// growth returns the relative increase of cur over base. A zero baseline
// only regresses when the current value became non-zero: the zero-allocation
// benchmarks guard exact zeros, so any growth there is unbounded.
func growth(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return cur/base - 1
}

// compare gates current against baseline: allocs/op and B/op may not grow by
// more than threshold on any baselined benchmark, and no baselined benchmark
// may vanish. It prints one line per benchmark and returns an error listing
// the failures, if any.
func compare(w io.Writer, baseline, current map[string]Result, threshold float64) error {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not in current run", name))
			continue
		}
		status := "ok"
		for _, dim := range []struct {
			unit      string
			base, cur float64
		}{
			{"allocs/op", base.AllocsPerOp, cur.AllocsPerOp},
			{"B/op", base.BytesPerOp, cur.BytesPerOp},
		} {
			if g := growth(dim.base, dim.cur); g > threshold {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s: %s %.0f -> %.0f (%+.1f%% > %.0f%%)",
					name, dim.unit, dim.base, dim.cur, g*100, threshold*100))
			}
		}
		fmt.Fprintf(w, "%-4s %-40s allocs/op %8.0f -> %-8.0f B/op %10.0f -> %-10.0f ns/op %12.0f -> %-12.0f\n",
			status, name, base.AllocsPerOp, cur.AllocsPerOp, base.BytesPerOp, cur.BytesPerOp, base.NsPerOp, cur.NsPerOp)
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			fmt.Fprintf(w, "new  %s (not in baseline; will be gated once recorded)\n", name)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchjson: %d regression(s) beyond %.0f%%:\n  %s",
			len(failures), threshold*100, strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(w, "benchjson: %d benchmarks within %.0f%% of baseline\n", len(names), threshold*100)
	return nil
}

func runCompare(args []string) error {
	fs := flag.NewFlagSet("benchjson compare", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.10, "maximum allowed relative growth in allocs/op and B/op")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("benchjson compare: want <baseline.json> <current.json>, got %d args", fs.NArg())
	}
	baseline, err := loadResults(fs.Arg(0))
	if err != nil {
		return err
	}
	current, err := loadResults(fs.Arg(1))
	if err != nil {
		return err
	}
	return compare(os.Stdout, baseline, current, *threshold)
}

// expArm is the schema of one personalization-matrix row in an experiment
// entry; pointers distinguish "absent" from zero.
type expArm struct {
	Arm        *string  `json:"arm"`
	GlobalAcc  *float64 `json:"global_acc"`
	AdaptedAcc *float64 `json:"adapted_acc"`
}

// expcheck validates that each named key exists in the keyed experiment file
// and holds a personalization matrix: a non-empty `arms` array whose rows
// all carry arm/global_acc/adapted_acc. Presence and shape only — values are
// gated by the bench that wrote them.
func expcheck(w io.Writer, path string, keys []string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("benchjson expcheck: %w", err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("benchjson expcheck: parsing %s: %w", path, err)
	}
	var failures []string
	for _, key := range keys {
		entry, ok := doc[key]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: key missing", key))
			continue
		}
		var body struct {
			Arms []expArm `json:"arms"`
		}
		if err := json.Unmarshal(entry, &body); err != nil {
			failures = append(failures, fmt.Sprintf("%s: not an experiment entry: %v", key, err))
			continue
		}
		if len(body.Arms) == 0 {
			failures = append(failures, fmt.Sprintf("%s: empty or missing arms array", key))
			continue
		}
		for i, a := range body.Arms {
			switch {
			case a.Arm == nil || *a.Arm == "":
				failures = append(failures, fmt.Sprintf("%s: arms[%d] missing arm name", key, i))
			case a.GlobalAcc == nil:
				failures = append(failures, fmt.Sprintf("%s: arms[%d] (%s) missing global_acc", key, i, *a.Arm))
			case a.AdaptedAcc == nil:
				failures = append(failures, fmt.Sprintf("%s: arms[%d] (%s) missing adapted_acc", key, i, *a.Arm))
			}
		}
		fmt.Fprintf(w, "ok   %-10s %d arms\n", key, len(body.Arms))
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchjson expcheck: %d schema failure(s) in %s:\n  %s",
			len(failures), path, strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(w, "benchjson: %d experiment entries in %s match the schema\n", len(keys), path)
	return nil
}

func runExpcheck(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("benchjson expcheck: want <file.json> <key>..., got %d args", len(args))
	}
	return expcheck(os.Stdout, args[0], args[1:])
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "expcheck" {
		if err := runExpcheck(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		if err := runCompare(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	out := flag.String("out", "BENCH_fedml.json", "output JSON path")
	flag.Parse()
	if err := run(os.Stdin, *out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
