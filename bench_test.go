package fedml_test

import (
	"fmt"
	"net"
	"testing"

	"github.com/edgeai/fedml/internal/core"
	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/experiments"
	"github.com/edgeai/fedml/internal/meta"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

// The experiment benchmarks run shrunken-but-structurally-identical
// configurations of each table/figure so that `go test -bench=.` finishes in
// minutes; `cmd/fedml-bench -paper` runs the full-scale versions.

func benchExperiment(b *testing.B, run func() error) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1DatasetStats(b *testing.B) {
	benchExperiment(b, func() error {
		_, err := experiments.RunTable1(experiments.Table1Config{Scale: experiments.ScaleCI, Seed: 1})
		return err
	})
}

func BenchmarkFig2aNodeSimilarity(b *testing.B) {
	cfg := experiments.DefaultFig2aConfig(experiments.ScaleCI)
	cfg.T = 100
	benchExperiment(b, func() error {
		_, err := experiments.RunFig2a(cfg)
		return err
	})
}

func BenchmarkFig2bLocalSteps(b *testing.B) {
	cfg := experiments.DefaultFig2bConfig(experiments.ScaleCI)
	cfg.T = 100
	benchExperiment(b, func() error {
		_, err := experiments.RunFig2b(cfg)
		return err
	})
}

func BenchmarkFig3aSent140Convergence(b *testing.B) {
	cfg := experiments.DefaultFig3aConfig(experiments.ScaleCI)
	cfg.T = 20
	benchExperiment(b, func() error {
		_, err := experiments.RunFig3a(cfg)
		return err
	})
}

func BenchmarkFig3bTargetSimilarity(b *testing.B) {
	cfg := experiments.DefaultFig3bConfig(experiments.ScaleCI)
	cfg.T = 50
	benchExperiment(b, func() error {
		_, err := experiments.RunFig3b(cfg)
		return err
	})
}

func BenchmarkFig3cAdaptSynthetic(b *testing.B) {
	cfg := experiments.DefaultAdaptCompareConfig("synthetic", experiments.ScaleCI)
	cfg.T = 50
	cfg.Ks = []int{5}
	benchExperiment(b, func() error {
		_, err := experiments.RunAdaptCompare(cfg)
		return err
	})
}

func BenchmarkFig3dAdaptMNIST(b *testing.B) {
	cfg := experiments.DefaultAdaptCompareConfig("mnist", experiments.ScaleCI)
	cfg.T = 30
	cfg.Ks = []int{5}
	benchExperiment(b, func() error {
		_, err := experiments.RunAdaptCompare(cfg)
		return err
	})
}

func BenchmarkFig3eAdaptSent140(b *testing.B) {
	cfg := experiments.DefaultAdaptCompareConfig("sent140", experiments.ScaleCI)
	cfg.T = 20
	cfg.Ks = []int{5}
	benchExperiment(b, func() error {
		_, err := experiments.RunAdaptCompare(cfg)
		return err
	})
}

func BenchmarkFig4RobustAdapt(b *testing.B) {
	cfg := experiments.DefaultFig4Config(experiments.ScaleCI)
	cfg.T = 100
	cfg.N0 = 8
	cfg.Lambdas = []float64{0.01}
	benchExperiment(b, func() error {
		_, err := experiments.RunFig4(cfg)
		return err
	})
}

func BenchmarkFig4eXiSweep(b *testing.B) {
	cfg := experiments.DefaultFig4eConfig(experiments.ScaleCI)
	cfg.T = 100
	cfg.N0 = 8
	cfg.Xis = []float64{0.02}
	benchExperiment(b, func() error {
		_, err := experiments.RunFig4e(cfg)
		return err
	})
}

func BenchmarkThm3SurrogateDistance(b *testing.B) {
	cfg := experiments.DefaultThm3Config(experiments.ScaleCI)
	cfg.T = 50
	cfg.OptSteps = 50
	benchExperiment(b, func() error {
		_, err := experiments.RunThm3(cfg)
		return err
	})
}

func BenchmarkExtTimeToTarget(b *testing.B) {
	cfg := experiments.DefaultExtTimeConfig(experiments.ScaleCI)
	cfg.T = 100
	cfg.TargetG = 1.2
	benchExperiment(b, func() error {
		_, err := experiments.RunExtTime(cfg)
		return err
	})
}

func BenchmarkExtBaselines(b *testing.B) {
	cfg := experiments.DefaultExtBaselinesConfig(experiments.ScaleCI)
	cfg.T = 30
	benchExperiment(b, func() error {
		_, err := experiments.RunExtBaselines(cfg)
		return err
	})
}

// --- Ablation benchmarks (DESIGN.md §5) ---

func benchFederation(b *testing.B) (*data.Federation, *nn.SoftmaxRegression) {
	b.Helper()
	cfg := data.DefaultSyntheticConfig(0.5, 0.5)
	cfg.Nodes = 10
	cfg.Seed = 1
	fed, err := data.GenerateSynthetic(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return fed, &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses, L2: 0.01}
}

// BenchmarkAblationFirstOrder compares the cost of federated training with
// the exact second-order meta-gradient vs the FOMAML approximation.
func BenchmarkAblationFirstOrder(b *testing.B) {
	fed, m := benchFederation(b)
	for _, mode := range []meta.GradMode{meta.SecondOrder, meta.FirstOrder} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := core.Config{Alpha: 0.05, Beta: 0.01, T: 20, T0: 5, Seed: 1, GradMode: mode}
				if _, err := core.Train(m, fed, nil, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationHVP compares the analytic softmax Hessian-vector product
// against the generic central-finite-difference fallback.
func BenchmarkAblationHVP(b *testing.B) {
	fed, m := benchFederation(b)
	r := rng.New(1)
	theta := m.InitParams(r)
	v := m.InitParams(r)
	batch := fed.Sources[0].Test

	b.Run("analytic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.HVP(theta, batch, v)
		}
	})
	b.Run("finite-difference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = nn.FiniteDiffHVP(m, theta, batch, v)
		}
	})
}

// BenchmarkAblationTransport compares one round-trip of a full parameter
// vector over the in-memory pipe vs loopback TCP.
func BenchmarkAblationTransport(b *testing.B) {
	params := make([]float64, 7850) // MNIST softmax parameter count

	b.Run("memory", func(b *testing.B) {
		p, n := transport.Pair()
		defer p.Close()
		defer n.Close()
		go func() {
			for {
				m, err := n.Recv()
				if err != nil {
					return
				}
				if err := n.Send(m); err != nil {
					return
				}
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.Send(transport.Msg{Kind: transport.KindParams, Params: params}); err != nil {
				b.Fatal(err)
			}
			if _, err := p.Recv(); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("tcp", func(b *testing.B) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer ln.Close()
		done := make(chan struct{})
		go func() {
			defer close(done)
			links, err := transport.Accept(ln, 1)
			if err != nil {
				return
			}
			defer links[0].Close()
			for {
				m, err := links[0].Recv()
				if err != nil {
					return
				}
				if err := links[0].Send(m); err != nil {
					return
				}
			}
		}()
		link, err := transport.Dial(ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := link.Send(transport.Msg{Kind: transport.KindParams, Params: params}); err != nil {
				b.Fatal(err)
			}
			if _, err := link.Recv(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		link.Close()
		<-done
	})
}

// BenchmarkAblationLocalSteps measures how the communication budget trades
// against wall time as T0 varies at fixed T (the knob Theorem 2 analyzes).
func BenchmarkAblationLocalSteps(b *testing.B) {
	fed, m := benchFederation(b)
	for _, t0 := range []int{1, 5, 20} {
		b.Run(fmt.Sprintf("T0=%d", t0), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := core.Config{Alpha: 0.05, Beta: 0.01, T: 20, T0: t0, Seed: 1}
				res, err := core.Train(m, fed, nil, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Comm.Messages), "msgs/op")
			}
		})
	}
}

// BenchmarkMetaStep is the micro-benchmark of one full meta-update (inner
// step + outer gradient + HVP correction) on the synthetic model.
func BenchmarkMetaStep(b *testing.B) {
	fed, m := benchFederation(b)
	theta := m.InitParams(rng.New(1))
	nd := fed.Sources[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = meta.Step(m, theta, nd.Train, nd.Test, 0.05, 0.01, meta.SecondOrder)
	}
}

// BenchmarkFastAdaptation measures the target-side cost of real-time edge
// intelligence: one adaptation gradient step on K samples.
func BenchmarkFastAdaptation(b *testing.B) {
	fed, m := benchFederation(b)
	theta := m.InitParams(rng.New(1))
	nd := fed.Targets[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = meta.Adapt(m, theta, nd.Train, 0.05, 1)
	}
}

// --- Zero-allocation kernel benchmarks (DESIGN.md §6) ---

// BenchmarkGradInto measures the buffered gradient kernels against a warm
// workspace; steady state is expected to report 0 allocs/op.
func BenchmarkGradInto(b *testing.B) {
	fed, sm := benchFederation(b)
	batch := fed.Sources[0].Train
	mlp, err := nn.NewMLP(nn.MLPConfig{Dims: []int{fed.Dim, 16, fed.NumClasses}, BatchNorm: true, L2: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		m    nn.Model
	}{
		{"softmax", sm},
		{"mlp", mlp},
	} {
		b.Run(tc.name, func(b *testing.B) {
			theta := tc.m.InitParams(rng.New(1))
			ws := nn.NewWorkspace(tc.m)
			out := tensor.NewVec(tc.m.NumParams())
			nn.GradInto(tc.m, ws, theta, batch, out)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nn.GradInto(tc.m, ws, theta, batch, out)
			}
		})
	}
}

// BenchmarkGradStepInto measures the fused gradient+descent-step kernel —
// one pass over the parameter vector instead of gradient-write, copy, axpy —
// that the fedavg/reptile/meta inner loops run. Steady state is expected to
// report 0 allocs/op.
func BenchmarkGradStepInto(b *testing.B) {
	fed, sm := benchFederation(b)
	batch := fed.Sources[0].Train
	mlp, err := nn.NewMLP(nn.MLPConfig{Dims: []int{fed.Dim, 16, fed.NumClasses}, BatchNorm: true, L2: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		m    nn.Model
	}{
		{"softmax", sm},
		{"mlp", mlp},
	} {
		b.Run(tc.name, func(b *testing.B) {
			theta := tc.m.InitParams(rng.New(1))
			ws := nn.NewWorkspace(tc.m)
			g := tensor.NewVec(tc.m.NumParams())
			out := tensor.NewVec(tc.m.NumParams())
			nn.GradStepInto(tc.m, ws, theta, batch, 0.05, g, out)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nn.GradStepInto(tc.m, ws, theta, batch, 0.05, g, out)
			}
		})
	}
}

// BenchmarkMetaGradInto measures one full buffered meta-gradient (inner
// step + outer gradient + HVP correction) — the workspace counterpart of
// BenchmarkMetaStep's allocating path.
func BenchmarkMetaGradInto(b *testing.B) {
	fed, m := benchFederation(b)
	theta := m.InitParams(rng.New(1))
	nd := fed.Sources[0]
	ws := meta.NewWorkspace(m)
	grad := tensor.NewVec(m.NumParams())
	ws.GradInto(theta, nd.Train, nd.Test, 0.05, meta.SecondOrder, grad)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.GradInto(theta, nd.Train, nd.Test, 0.05, meta.SecondOrder, grad)
	}
}
