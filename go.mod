module github.com/edgeai/fedml

go 1.22
